//! A DVFS frequency domain with one or more cores.
//!
//! The cluster is the unit the governor controls: all cores share one
//! frequency (as in big.LITTLE policy domains). It owns the OPP table,
//! power model and idle-state table, performs energy integration, tracks
//! per-OPP wall-clock residency (the `time_in_state` statistic) and applies
//! frequency transitions with a configurable latency.
//!
//! # Time discipline
//!
//! All mutating calls take the current simulation time and must be
//! monotone. [`Cluster::advance`] integrates state up to `now`; the other
//! mutators call it implicitly, so callers may simply invoke them in event
//! order.

use crate::core::{CoreState, CpuCore};
use crate::cstate::CStateTable;
use crate::freq::{Cycles, Frequency};
use crate::opp::{OppIndex, OppTable};
use crate::power::{PowerLut, PowerModel};
use eavs_metrics::residency::ResidencyTracker;
use eavs_sim::time::{SimDuration, SimTime};

/// Governor-visible frequency limits (the `scaling_min_freq` /
/// `scaling_max_freq` pair, in OPP indices).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyLimits {
    /// Lowest permitted OPP index.
    pub min_index: OppIndex,
    /// Highest permitted OPP index.
    pub max_index: OppIndex,
}

impl PolicyLimits {
    /// Limits spanning an entire table.
    pub fn full(table: &OppTable) -> Self {
        PolicyLimits {
            min_index: table.min_index(),
            max_index: table.max_index(),
        }
    }

    /// Clamps an index into the limits.
    pub fn clamp(&self, idx: OppIndex) -> OppIndex {
        idx.clamp(self.min_index, self.max_index)
    }
}

/// Energy breakdown of a cluster, in joules.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CpuEnergyBreakdown {
    /// Energy of actively executing cores.
    pub busy_j: f64,
    /// Energy of idle cores (C-state residency).
    pub idle_j: f64,
    /// Always-on domain (uncore) energy.
    pub static_j: f64,
    /// Energy spent on frequency transitions.
    pub transition_j: f64,
}

impl CpuEnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.busy_j + self.idle_j + self.static_j + self.transition_j
    }
}

/// Configuration for building a [`Cluster`].
pub struct ClusterConfig {
    /// Human-readable name (e.g. "big", "LITTLE").
    pub name: &'static str,
    /// The OPP table.
    pub opps: OppTable,
    /// Power model.
    pub power: Box<dyn PowerModel>,
    /// Idle states.
    pub cstates: CStateTable,
    /// Number of cores sharing the domain.
    pub num_cores: usize,
    /// Latency of a frequency transition (work continues at the old
    /// frequency until it completes).
    pub transition_latency: SimDuration,
    /// OPP index at start.
    pub initial_index: OppIndex,
}

/// A shared-frequency CPU cluster.
pub struct Cluster {
    name: &'static str,
    opps: OppTable,
    power: Box<dyn PowerModel>,
    /// Per-OPP watts precomputed from `power` at construction; the per-frame
    /// energy integration reads this instead of re-evaluating the model.
    lut: PowerLut,
    cstates: CStateTable,
    cores: Vec<CpuCore>,
    cur: OppIndex,
    pending: Option<(SimTime, OppIndex)>,
    limits: PolicyLimits,
    transition_latency: SimDuration,
    transitions: u64,
    last_update: SimTime,
    start_time: SimTime,
    energy: CpuEnergyBreakdown,
    residency: ResidencyTracker,
    gated: bool,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("name", &self.name)
            .field("cur_freq", &self.current_freq())
            .field("cores", &self.cores.len())
            .field("transitions", &self.transitions)
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0` or `initial_index` is out of range.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.num_cores > 0, "cluster needs at least one core");
        assert!(
            config.initial_index < config.opps.len(),
            "initial OPP index out of range"
        );
        let start = SimTime::ZERO;
        let cores = (0..config.num_cores)
            .map(|id| CpuCore::new(id, start))
            .collect();
        let residency = ResidencyTracker::new(config.opps.len(), config.initial_index, start);
        let lut = PowerLut::derive(config.power.as_ref(), &config.opps);
        Cluster {
            name: config.name,
            limits: PolicyLimits::full(&config.opps),
            opps: config.opps,
            power: config.power,
            lut,
            cstates: config.cstates,
            cores,
            cur: config.initial_index,
            pending: None,
            transition_latency: config.transition_latency,
            transitions: 0,
            last_update: start,
            start_time: start,
            energy: CpuEnergyBreakdown::default(),
            residency,
            gated: false,
        }
    }

    /// `true` while the cluster is power-gated.
    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Power-gates or wakes the whole cluster. While gated, the domain
    /// draws no energy (cores are power-collapsed and the rail is off);
    /// work cannot be submitted.
    ///
    /// # Panics
    ///
    /// Panics when gating with a busy core.
    pub fn set_gated(&mut self, now: SimTime, gated: bool) {
        self.advance(now);
        if gated == self.gated {
            return;
        }
        // Close open idle intervals at the boundary so idle energy is
        // attributed to the correct (gated vs powered) regime.
        for core in &mut self.cores {
            let idle_len = core.flush_idle(now);
            if !self.gated {
                self.energy.idle_j += self.cstates.idle_energy(idle_len);
            }
            assert!(
                !core.is_busy() || !gated,
                "cannot power-gate a cluster with busy cores"
            );
        }
        self.gated = gated;
    }

    /// The cluster name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The OPP table.
    pub fn opps(&self) -> &OppTable {
        &self.opps
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The currently *effective* OPP index (a pending transition does not
    /// change this until its latency elapses).
    pub fn current_index(&self) -> OppIndex {
        self.cur
    }

    /// The currently effective frequency.
    pub fn current_freq(&self) -> Frequency {
        self.opps.freq(self.cur)
    }

    /// The index that will be in force once any pending transition lands.
    pub fn target_index(&self) -> OppIndex {
        self.pending.map_or(self.cur, |(_, idx)| idx)
    }

    /// Current policy limits.
    pub fn limits(&self) -> PolicyLimits {
        self.limits
    }

    /// Replaces the policy limits (e.g. thermal throttling). The current
    /// target is re-clamped at the next `set_target` call.
    ///
    /// # Panics
    ///
    /// Panics if the limits are inverted or out of range.
    pub fn set_limits(&mut self, limits: PolicyLimits) {
        assert!(
            limits.min_index <= limits.max_index && limits.max_index < self.opps.len(),
            "bad policy limits {limits:?}"
        );
        self.limits = limits;
    }

    /// Number of completed frequency transitions requested so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// A core's public view.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &CpuCore {
        &self.cores[core]
    }

    /// Advances all accounting to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "cluster clock went backwards: {} -> {}",
            self.last_update,
            now
        );
        while self.last_update < now {
            // Apply a pending switch that lands exactly at the current time.
            if let Some((at, idx)) = self.pending {
                if at <= self.last_update {
                    self.apply_switch(at.max(self.last_update), idx);
                }
            }
            let seg_end = match self.pending {
                Some((at, _)) if at < now => at,
                _ => now,
            };
            self.integrate_segment(self.last_update, seg_end);
            self.last_update = seg_end;
            if let Some((at, idx)) = self.pending {
                if at <= self.last_update {
                    self.apply_switch(at, idx);
                }
            }
        }
        // Zero-length advance may still need to land a due switch.
        if let Some((at, idx)) = self.pending {
            if at <= now {
                self.apply_switch(at, idx);
            }
        }
    }

    fn apply_switch(&mut self, at: SimTime, idx: OppIndex) {
        self.cur = idx;
        self.pending = None;
        self.residency.switch_to(idx, at);
    }

    fn integrate_segment(&mut self, start: SimTime, end: SimTime) {
        if start == end {
            return;
        }
        if self.gated {
            debug_assert!(
                self.cores.iter().all(|c| !c.is_busy()),
                "gated cluster with busy core"
            );
            return; // rail off: no energy, no progress
        }
        let freq = self.opps.freq(self.cur);
        let active_p = self.lut.active_at(self.cur);
        for core in &mut self.cores {
            let out = core.advance_segment(start, end, freq);
            self.energy.busy_j += active_p * out.busy.as_secs_f64();
        }
        self.energy.static_j += self.lut.static_w() * (end - start).as_secs_f64();
    }

    /// Requests a frequency change to `index`, clamped to the policy
    /// limits. The new frequency takes effect after the transition latency;
    /// work continues at the old frequency meanwhile. Requesting the
    /// current target is a no-op.
    ///
    /// Returns the (clamped) index that was targeted.
    pub fn set_target(&mut self, now: SimTime, index: OppIndex) -> OppIndex {
        self.advance(now);
        let idx = self.limits.clamp(index.min(self.opps.max_index()));
        if idx == self.target_index() {
            return idx;
        }
        self.transitions += 1;
        self.energy.transition_j += self.lut.transition_j();
        if self.transition_latency.is_zero() {
            self.apply_switch(now, idx);
        } else {
            self.pending = Some((now + self.transition_latency, idx));
        }
        idx
    }

    /// Requests the slowest OPP whose frequency is at least `target`
    /// (cpufreq's `CPUFREQ_RELATION_L`), clamped to policy limits.
    pub fn set_target_freq(&mut self, now: SimTime, target: Frequency) -> OppIndex {
        let idx = self.opps.closest_satisfying(target);
        self.set_target(now, idx)
    }

    /// Starts a job of `cycles` on `core` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the core is busy or `core` is out of range.
    pub fn start_job(&mut self, now: SimTime, core: usize, cycles: Cycles) {
        assert!(!self.gated, "cannot run work on a power-gated cluster");
        self.advance(now);
        let idle_len = self.cores[core].start_job(cycles, now);
        self.energy.idle_j += self.cstates.idle_energy(idle_len);
    }

    /// Predicts when the job on `core` will finish given the current
    /// frequency and any pending transition, assuming no further changes.
    /// `None` if the core is idle.
    ///
    /// The cluster must already be advanced to `now` (any mutator does
    /// this); predictions are exact under the stated assumption, so the
    /// session can schedule a completion event at the returned instant.
    pub fn completion_time(&self, now: SimTime, core: usize) -> Option<SimTime> {
        let mut remaining = self.cores[core].remaining()?;
        let mut t = now.max(self.last_update);
        let mut freq = self.opps.freq(self.cur);
        if let Some((at, idx)) = self.pending {
            if at > t {
                let head = freq.cycles_in(at - t);
                if head.get() >= remaining.get() {
                    return Some(t + freq.time_for(remaining));
                }
                remaining = remaining.saturating_sub(head);
                t = at;
            }
            freq = self.opps.freq(idx);
        }
        Some(t + freq.time_for(remaining))
    }

    /// Total busy time across all cores.
    pub fn busy_total(&self) -> SimDuration {
        self.cores.iter().map(|c| c.busy_total()).sum()
    }

    /// Busy time of one core (for load sampling).
    pub fn core_busy_total(&self, core: usize) -> SimDuration {
        self.cores[core].busy_total()
    }

    /// Wall-clock residency per OPP index up to `now`.
    pub fn time_in_state(&self, now: SimTime) -> Vec<SimDuration> {
        self.residency.snapshot(now)
    }

    /// Fills `out` with the wall-clock residency per OPP index up to
    /// `now`, reusing the vector's capacity.
    pub fn time_in_state_into(&self, now: SimTime, out: &mut Vec<SimDuration>) {
        self.residency.snapshot_into(now, out);
    }

    /// Flushes idle accounting and returns the energy breakdown as of
    /// `now`. Idempotent; the cluster remains usable afterwards.
    pub fn energy_at(&mut self, now: SimTime) -> CpuEnergyBreakdown {
        self.advance(now);
        for core in &mut self.cores {
            let idle_len = core.flush_idle(now);
            if !self.gated {
                self.energy.idle_j += self.cstates.idle_energy(idle_len);
            }
        }
        self.energy
    }

    /// Mean power over the elapsed lifetime, at `now`.
    pub fn mean_power(&mut self, now: SimTime) -> f64 {
        let elapsed = now - self.start_time;
        if elapsed.is_zero() {
            return 0.0;
        }
        self.energy_at(now).total() / elapsed.as_secs_f64()
    }

    /// `true` if the given core is executing.
    pub fn is_core_busy(&self, core: usize) -> bool {
        self.cores[core].is_busy()
    }

    /// The idle-state table (for inspection and analytic figures).
    pub fn cstates(&self) -> &CStateTable {
        &self.cstates
    }

    /// The power model (for inspection and analytic figures).
    pub fn power_model(&self) -> &dyn PowerModel {
        self.power.as_ref()
    }

    /// The state of every core (diagnostics).
    pub fn core_states(&self) -> Vec<CoreState> {
        self.cores.iter().map(|c| c.state()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::CmosPowerModel;

    fn test_cluster(latency_us: u64) -> Cluster {
        Cluster::new(ClusterConfig {
            name: "test",
            opps: OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (2000, 1250)]).unwrap(),
            power: Box::new(CmosPowerModel::new(1e-9, 0.1, 0.05)),
            cstates: CStateTable::mobile_default(0.08),
            num_cores: 2,
            transition_latency: SimDuration::from_micros(latency_us),
            initial_index: 1,
        })
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn initial_state() {
        let c = test_cluster(0);
        assert_eq!(c.current_index(), 1);
        assert_eq!(c.current_freq(), Frequency::from_mhz(1000));
        assert_eq!(c.num_cores(), 2);
        assert_eq!(c.transitions(), 0);
    }

    #[test]
    fn job_runs_and_completes_at_predicted_time() {
        let mut c = test_cluster(0);
        c.start_job(t(0), 0, Cycles::from_mega(10.0)); // 10 ms at 1 GHz
        let done = c.completion_time(t(0), 0).unwrap();
        assert_eq!(done, t(10));
        c.advance(done);
        assert!(!c.is_core_busy(0));
        assert_eq!(c.core(0).jobs_completed(), 1);
    }

    #[test]
    fn zero_latency_switch_changes_speed() {
        let mut c = test_cluster(0);
        c.start_job(t(0), 0, Cycles::from_mega(10.0));
        c.advance(t(2)); // 2 Mcycles done
        c.set_target(t(2), 2); // to 2 GHz
        let done = c.completion_time(t(2), 0).unwrap();
        // 8 Mcycles at 2 GHz = 4 ms.
        assert_eq!(done, t(6));
        c.advance(done);
        assert!(!c.is_core_busy(0));
    }

    #[test]
    fn transition_latency_delays_speedup() {
        let mut c = test_cluster(1000); // 1 ms latency
        c.start_job(t(0), 0, Cycles::from_mega(10.0));
        c.set_target(t(0), 2);
        // During [0, 1ms) still 1 GHz (1 Mcycle), then 9 Mcycle at 2 GHz (4.5 ms).
        let done = c.completion_time(t(0), 0).unwrap();
        assert_eq!(done, SimTime::from_micros(5_500));
        c.advance(done);
        assert!(!c.is_core_busy(0));
        assert_eq!(c.current_index(), 2);
    }

    #[test]
    fn set_target_clamps_to_limits() {
        let mut c = test_cluster(0);
        c.set_limits(PolicyLimits {
            min_index: 1,
            max_index: 1,
        });
        assert_eq!(c.set_target(t(0), 2), 1);
        assert_eq!(c.set_target(t(1), 0), 1);
        assert_eq!(c.current_index(), 1);
    }

    #[test]
    fn repeat_target_is_noop() {
        let mut c = test_cluster(0);
        c.set_target(t(0), 2);
        let n = c.transitions();
        c.set_target(t(1), 2);
        assert_eq!(c.transitions(), n);
    }

    #[test]
    fn residency_tracks_wall_time() {
        let mut c = test_cluster(0);
        c.advance(t(4));
        c.set_target(t(4), 0);
        c.advance(t(10));
        let tis = c.time_in_state(t(10));
        assert_eq!(tis[1], SimDuration::from_millis(4));
        assert_eq!(tis[0], SimDuration::from_millis(6));
        assert_eq!(tis[2], SimDuration::ZERO);
    }

    #[test]
    fn energy_breakdown_accumulates_all_components() {
        let mut c = test_cluster(0);
        c.start_job(t(0), 0, Cycles::from_mega(10.0));
        c.set_target(t(0), 2);
        c.advance(t(20));
        let e = c.energy_at(t(20));
        assert!(e.busy_j > 0.0, "busy energy");
        assert!(e.idle_j > 0.0, "idle energy (core 1 idle throughout)");
        assert!(e.static_j > 0.0, "static energy");
        assert!(e.transition_j > 0.0, "transition energy");
        let expected_static = 0.05 * 0.02;
        assert!((e.static_j - expected_static).abs() < 1e-9);
    }

    #[test]
    fn energy_at_is_idempotent() {
        let mut c = test_cluster(0);
        c.advance(t(10));
        let e1 = c.energy_at(t(10));
        let e2 = c.energy_at(t(10));
        assert_eq!(e1, e2);
    }

    #[test]
    fn busy_energy_matches_hand_computation() {
        let mut c = test_cluster(0);
        // 10 Mcycles at 1 GHz = 10 ms busy at P_active(1GHz@1V) = 1e-9*1*1e9 + 0.1 = 1.1 W.
        c.start_job(t(0), 0, Cycles::from_mega(10.0));
        c.advance(t(10));
        let e = c.energy_at(t(10));
        assert!((e.busy_j - 1.1 * 0.010).abs() < 1e-6, "busy_j={}", e.busy_j);
    }

    #[test]
    fn mean_power_between_idle_and_active() {
        let mut c = test_cluster(0);
        c.advance(t(100));
        let p = c.mean_power(t(100));
        // Fully idle: 2 cores deep-idle + static.
        assert!(p > 0.0 && p < 0.2, "idle mean power {p}");
    }

    #[test]
    fn completion_prediction_none_when_idle() {
        let c = test_cluster(0);
        assert_eq!(c.completion_time(t(0), 0), None);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut c = test_cluster(0);
        c.advance(t(5));
        c.advance(t(4));
    }

    #[test]
    fn power_gating_stops_energy_accrual() {
        let mut c = test_cluster(0);
        c.advance(t(10));
        let before = c.energy_at(t(10));
        c.set_gated(t(10), true);
        assert!(c.is_gated());
        c.advance(t(1000));
        let gated = c.energy_at(t(1000));
        assert_eq!(gated, before, "gated cluster must not accrue energy");
        // Waking resumes accounting.
        c.set_gated(t(1000), false);
        c.advance(t(1100));
        let after = c.energy_at(t(1100));
        assert!(after.total() > gated.total());
        // Idempotent gating calls are no-ops.
        c.set_gated(t(1100), false);
    }

    #[test]
    #[should_panic(expected = "power-gated")]
    fn gated_cluster_rejects_work() {
        let mut c = test_cluster(0);
        c.set_gated(t(0), true);
        c.start_job(t(1), 0, Cycles::from_mega(1.0));
    }

    #[test]
    #[should_panic(expected = "busy cores")]
    fn gating_busy_cluster_panics() {
        let mut c = test_cluster(0);
        c.start_job(t(0), 0, Cycles::from_mega(100.0));
        c.set_gated(t(1), true);
    }

    #[test]
    fn pending_switch_override() {
        let mut c = test_cluster(1000);
        c.set_target(t(0), 2);
        c.set_target(t(0), 0); // override before it lands
        c.advance(t(2));
        assert_eq!(c.current_index(), 0);
        assert_eq!(c.transitions(), 2);
    }
}
