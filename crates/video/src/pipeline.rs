//! The decode pipeline: downloaded frames → decoder → decoded-frame queue.
//!
//! Models the player's decode stage. Downloaded segments feed an undecoded
//! queue; the decoder (one frame in flight, executing on a CPU core) moves
//! frames into a small decoded-frame queue that the display drains at
//! vsync. The decoded queue is bounded, as in real players (a handful of
//! output surfaces), which is what creates the *slack* the EAVS governor
//! exploits: the decoder only needs to stay ahead of vsync by the queue
//! depth, not run flat out.

use crate::frame::Frame;
use std::collections::VecDeque;

/// Decode-stage state machine.
#[derive(Clone, Debug)]
pub struct DecodePipeline {
    undecoded: VecDeque<Frame>,
    in_flight: Option<Frame>,
    decoded: VecDeque<Frame>,
    decoded_cap: usize,
    frames_decoded: u64,
}

impl DecodePipeline {
    /// Creates a pipeline whose decoded-frame queue holds `decoded_cap`
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics if `decoded_cap == 0`.
    pub fn new(decoded_cap: usize) -> Self {
        assert!(decoded_cap > 0, "decoded queue needs capacity");
        DecodePipeline {
            undecoded: VecDeque::new(),
            in_flight: None,
            decoded: VecDeque::new(),
            decoded_cap,
            frames_decoded: 0,
        }
    }

    /// Enqueues a downloaded segment's frames.
    pub fn push_frames(&mut self, frames: impl IntoIterator<Item = Frame>) {
        self.undecoded.extend(frames);
    }

    /// `true` if a decode job can start now: a frame is waiting, nothing is
    /// in flight, and there is room for the output.
    pub fn can_start_decode(&self) -> bool {
        self.in_flight.is_none()
            && !self.undecoded.is_empty()
            && self.decoded.len() < self.decoded_cap
    }

    /// Starts decoding the next frame, returning it (its ground-truth
    /// `decode_cycles` sizes the CPU job).
    ///
    /// # Panics
    ///
    /// Panics if [`DecodePipeline::can_start_decode`] is false.
    pub fn start_decode(&mut self) -> Frame {
        assert!(self.can_start_decode(), "decode start while not ready");
        let frame = self.undecoded.pop_front().expect("checked non-empty");
        self.in_flight = Some(frame);
        frame
    }

    /// Completes the in-flight decode, moving the frame to the decoded
    /// queue.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn finish_decode(&mut self) -> Frame {
        let frame = self.in_flight.take().expect("no decode in flight");
        self.decoded.push_back(frame);
        self.frames_decoded += 1;
        frame
    }

    /// Pops the next decoded frame for display.
    pub fn take_decoded(&mut self) -> Option<Frame> {
        self.decoded.pop_front()
    }

    /// Peeks the next decoded frame without consuming it.
    pub fn peek_decoded(&self) -> Option<&Frame> {
        self.decoded.front()
    }

    /// Drop-mode decoder catch-up, mirroring what real players do when
    /// running behind the display clock (`before` = next due index):
    ///
    /// 1. stale B-frames at the queue front are discarded *without
    ///    decoding* (non-reference, cheap catch-up);
    /// 2. if the front is then a stale P-frame, the decoder cannot catch
    ///    up within this GOP (later frames reference the stale chain), so
    ///    it resyncs: everything up to the next I-frame is discarded.
    ///
    /// Stale I-frames are kept — they must decode to anchor the GOP even
    /// though their own display slot passed. Returns the number of frames
    /// discarded undecoded.
    pub fn catch_up(&mut self, before: u64) -> usize {
        use crate::frame::FrameType;
        let mut skipped = 0;
        while matches!(
            self.undecoded.front(),
            Some(f) if f.index < before && f.frame_type == FrameType::B
        ) {
            self.undecoded.pop_front();
            skipped += 1;
        }
        if matches!(
            self.undecoded.front(),
            Some(f) if f.index < before && f.frame_type == FrameType::P
        ) {
            while matches!(
                self.undecoded.front(),
                Some(f) if f.frame_type != FrameType::I
            ) {
                self.undecoded.pop_front();
                skipped += 1;
            }
        }
        skipped
    }

    /// Discards decoded frames with `index < before` (their display slot
    /// already passed under a drop-late policy). Returns how many were
    /// discarded.
    pub fn discard_decoded_before(&mut self, before: u64) -> usize {
        let mut discarded = 0;
        while matches!(self.decoded.front(), Some(f) if f.index < before) {
            self.decoded.pop_front();
            discarded += 1;
        }
        discarded
    }

    /// Peeks upcoming undecoded frames (container metadata is visible to
    /// the governor: sizes and types, *not* cycles).
    pub fn peek_undecoded(&self, n: usize) -> impl Iterator<Item = &Frame> {
        self.undecoded.iter().take(n)
    }

    /// The next frame that would enter the decoder, if any. Fault
    /// injection uses this to decide whether a decoder stall or cycle
    /// spike applies before the decode job is created.
    pub fn peek_next_undecoded(&self) -> Option<&Frame> {
        self.undecoded.front()
    }

    /// The frame currently being decoded, if any.
    pub fn in_flight(&self) -> Option<&Frame> {
        self.in_flight.as_ref()
    }

    /// Frames waiting to be decoded.
    pub fn undecoded_len(&self) -> usize {
        self.undecoded.len()
    }

    /// Frames decoded and awaiting display.
    pub fn decoded_len(&self) -> usize {
        self.decoded.len()
    }

    /// Capacity of the decoded-frame queue.
    pub fn decoded_cap(&self) -> usize {
        self.decoded_cap
    }

    /// Total frames decoded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Frames buffered anywhere in the pipeline (undecoded + in flight +
    /// decoded) — the media the player holds beyond the playhead.
    pub fn frames_buffered(&self) -> usize {
        self.undecoded.len() + usize::from(self.in_flight.is_some()) + self.decoded.len()
    }

    /// `true` when every queue is empty.
    pub fn is_drained(&self) -> bool {
        self.frames_buffered() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use eavs_cpu::freq::Cycles;
    use eavs_sim::time::SimDuration;

    fn frame(index: u64) -> Frame {
        Frame {
            index,
            frame_type: FrameType::P,
            size_bytes: 1000,
            decode_cycles: Cycles::from_mega(4.0),
            duration: SimDuration::from_nanos(33_333_333),
        }
    }

    #[test]
    fn decode_flow() {
        let mut p = DecodePipeline::new(2);
        assert!(!p.can_start_decode(), "empty pipeline cannot start");
        p.push_frames([frame(0), frame(1), frame(2)]);
        assert_eq!(p.undecoded_len(), 3);
        assert!(p.can_start_decode());

        let f = p.start_decode();
        assert_eq!(f.index, 0);
        assert!(!p.can_start_decode(), "one decode at a time");
        assert_eq!(p.in_flight().unwrap().index, 0);

        p.finish_decode();
        assert_eq!(p.decoded_len(), 1);
        assert_eq!(p.frames_decoded(), 1);
        assert!(p.can_start_decode());
    }

    #[test]
    fn decoded_queue_capacity_blocks_decode() {
        let mut p = DecodePipeline::new(1);
        p.push_frames([frame(0), frame(1)]);
        p.start_decode();
        p.finish_decode();
        assert_eq!(p.decoded_len(), 1);
        assert!(!p.can_start_decode(), "decoded queue full");
        let out = p.take_decoded().unwrap();
        assert_eq!(out.index, 0);
        assert!(p.can_start_decode(), "room again after display");
    }

    #[test]
    fn frames_buffered_counts_all_stages() {
        let mut p = DecodePipeline::new(4);
        p.push_frames([frame(0), frame(1), frame(2)]);
        p.start_decode();
        p.finish_decode();
        p.start_decode();
        assert_eq!(p.frames_buffered(), 3);
        assert!(!p.is_drained());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut p = DecodePipeline::new(2);
        p.push_frames([frame(0), frame(1), frame(2)]);
        let peeked: Vec<u64> = p.peek_undecoded(2).map(|f| f.index).collect();
        assert_eq!(peeked, vec![0, 1]);
        assert_eq!(p.undecoded_len(), 3);
    }

    #[test]
    fn fifo_order_end_to_end() {
        let mut p = DecodePipeline::new(8);
        p.push_frames((0..5).map(frame));
        let mut out = Vec::new();
        while p.can_start_decode() {
            p.start_decode();
            p.finish_decode();
        }
        while let Some(f) = p.take_decoded() {
            out.push(f.index);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(p.is_drained());
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn start_without_frames_panics() {
        DecodePipeline::new(2).start_decode();
    }

    #[test]
    #[should_panic(expected = "no decode in flight")]
    fn finish_without_start_panics() {
        DecodePipeline::new(2).finish_decode();
    }
}
