//! Low-latency live streaming.
//!
//! Live sessions keep tiny buffers (seconds, not tens of seconds), so the
//! decoder has far less slack than in VoD: the startup threshold is a few
//! frames, the player cap is short, and the GOP has no B frames. This
//! example compares EAVS against interactive under those constraints and
//! shows that the savings shrink but QoE survives.
//!
//! ```text
//! cargo run --release --example live_streaming
//! ```

use eavs::metrics::table::Table;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::Interactive;

fn main() {
    // 60 s of 720p30 "live" content with a 4-second player cap and a
    // 10-frame startup threshold.
    let build = |gov: GovernorChoice| {
        StreamingSession::builder(gov)
            .manifest(Manifest::single(
                3_000,
                1280,
                720,
                SimDuration::from_secs(60),
                30,
            ))
            .content(ContentProfile::Sport)
            .max_buffer(SimDuration::from_secs(4))
            .startup_frames(10)
            .resume_frames(15)
            .decoded_cap(3)
            .seed(7)
            .run()
    };

    let mut table = Table::new(&[
        "governor",
        "cpu (J)",
        "startup (ms)",
        "miss %",
        "rebuffers",
        "mean freq",
    ]);
    table.set_title("Live 720p30 sport: 4 s buffer cap, 10-frame startup");
    let mut joules = Vec::new();
    for (label, gov) in [
        (
            "interactive",
            GovernorChoice::Baseline(Box::new(Interactive::new()) as Box<_>),
        ),
        (
            "eavs",
            GovernorChoice::Eavs(EavsGovernor::new(
                Box::new(Hybrid::default()),
                EavsConfig::default(),
            )),
        ),
    ] {
        let r = build(gov);
        joules.push(r.cpu_joules());
        table.row(&[
            label,
            &format!("{:.2}", r.cpu_joules()),
            &format!("{:.0}", r.qoe.startup_delay.as_secs_f64() * 1e3),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &r.qoe.rebuffer_events.to_string(),
            &r.mean_freq.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Savings under live constraints: {:.1}%. The network buffer is tiny,\n\
         but the slack EAVS harvests comes from the decoded-frame queue and\n\
         vsync cadence, which live playback keeps.",
        (1.0 - joules[1] / joules[0]) * 100.0
    );
}
