//! Acceptance tests for the fault-injection figures: the F24 storm must
//! separate panic-recovery EAVS from the stock governors, and faulted
//! sessions must stay deterministic across the work-stealing pool.

use eavs_bench::harness::{eavs_resilient, governor, run_parallel_labeled};
use eavs_bench::robustness::{balanced_retry, f24_labels, f24_reports, f25_policies};
use eavs_core::session::StreamingSession;
use eavs_faults::FaultPlan;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_video::manifest::Manifest;
use std::sync::Arc;

/// The paper-style claim behind F24: under the standard storm, EAVS with
/// panic recovery rides out every fault — zero rebuffers, zero late
/// vsyncs — while at least one stock governor visibly degrades.
#[test]
fn f24_storm_recovery_separates_governors() {
    let labels = f24_labels();
    let reports = f24_reports();
    assert_eq!(labels.len(), reports.len());

    let panic_row = reports.last().expect("eavs-panic row");
    assert_eq!(*labels.last().unwrap(), "eavs-panic");
    assert_eq!(
        panic_row.qoe.rebuffer_events, 0,
        "eavs-panic must absorb the storm without rebuffering"
    );
    assert_eq!(
        panic_row.qoe.late_vsyncs, 0,
        "eavs-panic must not miss a vsync under the storm"
    );
    assert!(
        panic_row.panic_races > 0,
        "the storm must actually trigger panic re-races"
    );

    let stock_degraded = reports[..reports.len() - 1]
        .iter()
        .any(|r| r.qoe.rebuffer_events > 0 || r.qoe.late_vsyncs > 0);
    assert!(
        stock_degraded,
        "at least one stock governor must rebuffer or miss vsyncs under the storm"
    );

    // Every row faced the same scripted network faults: the corrupt
    // segment was re-downloaded (not silently swallowed) everywhere.
    for (name, r) in labels.iter().zip(&reports) {
        assert!(r.corrupt_downloads >= 1, "{name}: corruption not injected");
        assert!(r.download_retries >= 1, "{name}: no retry recorded");
        assert_eq!(r.segments_abandoned, 0, "{name}: storm must be recoverable");
    }
}

/// F25 sanity: the policy sweep spans the qualitative regimes — the
/// watchdog-free row hangs on the first stall (session runs to the
/// safety horizon) while the balanced row finishes near content length.
#[test]
fn f25_policies_span_the_design_space() {
    let policies = f25_policies();
    assert!(policies.len() >= 4);
    let labels: Vec<&str> = policies.iter().map(|(l, _)| *l).collect();
    assert!(labels.contains(&"balanced"));
    assert!(labels.contains(&"no-watchdog"));
    let no_watchdog = &policies
        .iter()
        .find(|(l, _)| *l == "no-watchdog")
        .unwrap()
        .1;
    assert!(no_watchdog.timeout.is_none());
}

/// Determinism under faults: a storm session run through the
/// work-stealing pool is byte-identical (Debug repr) to the same session
/// run serially — fault decisions are coordinate-keyed, never
/// thread-order-dependent.
#[test]
fn faulted_pool_execution_matches_serial() {
    let manifest = Arc::new(Manifest::single(
        3_000,
        1280,
        720,
        SimDuration::from_secs(20),
        30,
    ));
    let names = ["ondemand", "schedutil", "eavs", "eavs-panic"];

    let run_one = |name: &str, seed: u64, manifest: Arc<Manifest>| {
        let gov = if name == "eavs-panic" {
            eavs_resilient()
        } else {
            governor(name)
        };
        StreamingSession::builder(gov)
            .manifest(manifest)
            .content(ContentProfile::Sport)
            .faults(FaultPlan::standard_storm())
            .retry(balanced_retry())
            .seed(seed)
            .run()
    };

    let serial: Vec<String> = names
        .iter()
        .flat_map(|&name| {
            let manifest = Arc::clone(&manifest);
            (0..2u64).map(move |k| format!("{:?}", run_one(name, 100 + k, Arc::clone(&manifest))))
        })
        .collect();

    let pooled: Vec<String> = run_parallel_labeled(
        names
            .iter()
            .flat_map(|&name| {
                let manifest = Arc::clone(&manifest);
                (0..2u64).map(move |k| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || format!("{:?}", run_one(name, 100 + k, manifest));
                    (format!("faulted determinism {name} seed {k}"), job)
                })
            })
            .collect(),
    );

    assert_eq!(serial, pooled, "pool execution changed faulted results");
}
