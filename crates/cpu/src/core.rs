//! A single CPU core's execution state.
//!
//! A core is either idle or executing one job (a bag of cycles). The
//! enclosing [`Cluster`](crate::cluster::Cluster) drives cores segment by
//! segment, supplying the frequency in force for each segment; the core
//! tracks remaining work and busy/idle accounting.

use crate::freq::{Cycles, Frequency};
use eavs_sim::time::{SimDuration, SimTime};

/// What a core is doing.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CoreState {
    /// Waiting for work since the given instant.
    Idle {
        /// When the core last became idle.
        since: SimTime,
    },
    /// Executing a job with this much work left.
    Busy {
        /// Remaining work.
        remaining: Cycles,
    },
}

/// One CPU core.
#[derive(Clone, Debug)]
pub struct CpuCore {
    id: usize,
    state: CoreState,
    busy_total: SimDuration,
    idle_total: SimDuration,
    jobs_completed: u64,
    cycles_retired: f64,
}

/// Result of advancing a core across one constant-frequency segment.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SegmentOutcome {
    /// How much of the segment the core spent executing.
    pub busy: SimDuration,
    /// Whether the in-flight job completed within the segment.
    pub completed: bool,
}

impl CpuCore {
    /// Creates an idle core.
    pub fn new(id: usize, start: SimTime) -> Self {
        CpuCore {
            id,
            state: CoreState::Idle { since: start },
            busy_total: SimDuration::ZERO,
            idle_total: SimDuration::ZERO,
            jobs_completed: 0,
            cycles_retired: 0.0,
        }
    }

    /// The core's index within its cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// `true` if the core is executing a job.
    pub fn is_busy(&self) -> bool {
        matches!(self.state, CoreState::Busy { .. })
    }

    /// Cumulative busy time (updated as segments are advanced).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Cumulative *accounted* idle time (idle intervals are attributed when
    /// the core wakes or the cluster finalizes).
    pub fn idle_total(&self) -> SimDuration {
        self.idle_total
    }

    /// Number of completed jobs.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Total cycles retired.
    pub fn cycles_retired(&self) -> f64 {
        self.cycles_retired
    }

    /// Remaining work of the in-flight job, if any.
    pub fn remaining(&self) -> Option<Cycles> {
        match self.state {
            CoreState::Busy { remaining } => Some(remaining),
            CoreState::Idle { .. } => None,
        }
    }

    /// Starts a job at `now`. Returns the length of the idle interval that
    /// just ended (for retroactive idle-energy accounting).
    ///
    /// # Panics
    ///
    /// Panics if the core is already busy.
    pub(crate) fn start_job(&mut self, cycles: Cycles, now: SimTime) -> SimDuration {
        match self.state {
            CoreState::Idle { since } => {
                let idle_len = now
                    .checked_duration_since(since)
                    .expect("core clock went backwards");
                self.idle_total += idle_len;
                self.state = CoreState::Busy { remaining: cycles };
                idle_len
            }
            CoreState::Busy { .. } => panic!("core {} already busy", self.id),
        }
    }

    /// Advances the core across `[start, end)` executed at `freq`.
    pub(crate) fn advance_segment(
        &mut self,
        start: SimTime,
        end: SimTime,
        freq: Frequency,
    ) -> SegmentOutcome {
        debug_assert!(end >= start);
        let seg = end - start;
        match self.state {
            CoreState::Idle { .. } => SegmentOutcome {
                busy: SimDuration::ZERO,
                completed: false,
            },
            CoreState::Busy { remaining } => {
                if remaining.is_zero() {
                    // Numerical dust from a previous segment: finish now.
                    self.finish_job(remaining, start);
                    return SegmentOutcome {
                        busy: SimDuration::ZERO,
                        completed: true,
                    };
                }
                let needed = freq.time_for(remaining);
                if needed <= seg {
                    self.busy_total += needed;
                    self.finish_job(remaining, start + needed);
                    SegmentOutcome {
                        busy: needed,
                        completed: true,
                    }
                } else {
                    let done = freq.cycles_in(seg);
                    let done = if done.get() > remaining.get() {
                        remaining
                    } else {
                        done
                    };
                    self.cycles_retired += done.get();
                    self.state = CoreState::Busy {
                        remaining: remaining.saturating_sub(done),
                    };
                    self.busy_total += seg;
                    SegmentOutcome {
                        busy: seg,
                        completed: false,
                    }
                }
            }
        }
    }

    fn finish_job(&mut self, remaining: Cycles, at: SimTime) {
        self.cycles_retired += remaining.get();
        self.jobs_completed += 1;
        self.state = CoreState::Idle { since: at };
    }

    /// Flushes the open idle interval up to `now`, returning its length and
    /// restarting accounting from `now`. Busy cores return zero.
    pub(crate) fn flush_idle(&mut self, now: SimTime) -> SimDuration {
        match &mut self.state {
            CoreState::Idle { since } => {
                let idle_len = now
                    .checked_duration_since(*since)
                    .expect("core clock went backwards");
                self.idle_total += idle_len;
                *since = now;
                idle_len
            }
            CoreState::Busy { .. } => SimDuration::ZERO,
        }
    }

    /// Time needed to finish the in-flight job at `freq`, if busy.
    pub fn time_to_finish(&self, freq: Frequency) -> Option<SimDuration> {
        self.remaining().map(|r| freq.time_for(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    const F1G: Frequency = Frequency::from_mhz(1_000);

    #[test]
    fn idle_core_does_nothing() {
        let mut c = CpuCore::new(0, t(0));
        let out = c.advance_segment(t(0), t(10), F1G);
        assert_eq!(out.busy, SimDuration::ZERO);
        assert!(!out.completed);
        assert!(!c.is_busy());
    }

    #[test]
    fn job_completes_within_segment() {
        let mut c = CpuCore::new(0, t(0));
        let idle = c.start_job(Cycles::from_mega(5.0), t(2)); // 5 ms at 1 GHz
        assert_eq!(idle, SimDuration::from_millis(2));
        let out = c.advance_segment(t(2), t(12), F1G);
        assert!(out.completed);
        assert_eq!(out.busy, SimDuration::from_millis(5));
        assert_eq!(c.jobs_completed(), 1);
        assert_eq!(c.busy_total(), SimDuration::from_millis(5));
        assert_eq!(c.state(), CoreState::Idle { since: t(7) });
    }

    #[test]
    fn job_spans_segments_at_different_frequencies() {
        let mut c = CpuCore::new(0, t(0));
        c.start_job(Cycles::from_mega(10.0), t(0));
        // 4 ms at 1 GHz retires 4 Mcycles.
        let out = c.advance_segment(t(0), t(4), F1G);
        assert!(!out.completed);
        assert_eq!(out.busy, SimDuration::from_millis(4));
        assert!((c.remaining().unwrap().mega() - 6.0).abs() < 1e-6);
        // Remaining 6 Mcycles at 2 GHz takes 3 ms.
        let f2g = Frequency::from_mhz(2_000);
        let out = c.advance_segment(t(4), t(20), f2g);
        assert!(out.completed);
        assert_eq!(out.busy, SimDuration::from_millis(3));
        assert!((c.cycles_retired() - 10e6).abs() < 10.0);
    }

    #[test]
    fn time_to_finish_estimate() {
        let mut c = CpuCore::new(0, t(0));
        assert_eq!(c.time_to_finish(F1G), None);
        c.start_job(Cycles::from_mega(2.0), t(0));
        assert_eq!(c.time_to_finish(F1G), Some(SimDuration::from_millis(2)));
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_start_panics() {
        let mut c = CpuCore::new(0, t(0));
        c.start_job(Cycles::from_mega(1.0), t(0));
        c.start_job(Cycles::from_mega(1.0), t(1));
    }

    #[test]
    fn flush_idle_accounts_interval() {
        let mut c = CpuCore::new(0, t(0));
        assert_eq!(c.flush_idle(t(5)), SimDuration::from_millis(5));
        assert_eq!(c.flush_idle(t(5)), SimDuration::ZERO);
        assert_eq!(c.idle_total(), SimDuration::from_millis(5));
        c.start_job(Cycles::from_mega(1.0), t(7));
        assert_eq!(c.idle_total(), SimDuration::from_millis(7));
        assert_eq!(
            c.flush_idle(t(9)),
            SimDuration::ZERO,
            "busy core has no idle"
        );
    }

    #[test]
    fn numerical_dust_completes_next_segment() {
        let mut c = CpuCore::new(0, t(0));
        c.start_job(Cycles::new(0.5), t(0)); // sub-cycle job
        let out = c.advance_segment(t(0), t(1), F1G);
        assert!(out.completed);
        assert_eq!(out.busy, SimDuration::ZERO);
    }
}
