//! CPU power models.
//!
//! Converts an operating point and activity state into watts. Two models
//! are provided:
//!
//! * [`CmosPowerModel`] — the analytic `P = Ceff·V²·f + P_static(V)` form,
//!   the standard first-order model for CMOS dynamic power. Its convexity
//!   in frequency (through the voltage/frequency curve) is what makes
//!   "race-to-max" energy-suboptimal and the paper's approach win.
//! * [`TablePowerModel`] — per-OPP measured watts, for SoCs where published
//!   measurements exist.
//!
//! All powers are per-core; cluster-shared (uncore) power is represented by
//! the model's `domain_static_w`.

use crate::opp::{Opp, OppTable};

/// Converts operating points to per-core power draw in watts.
pub trait PowerModel: std::fmt::Debug + Send {
    /// Power of one core actively executing at `opp`.
    fn active_power(&self, opp: Opp) -> f64;

    /// Power of one idle (clock-gated, WFI) core while the domain sits at
    /// `opp`. Voltage-dependent leakage keeps this non-zero.
    fn idle_power(&self, opp: Opp) -> f64;

    /// Always-on power of the frequency domain itself (uncore, L2, PLLs),
    /// drawn whenever the cluster is powered regardless of core activity.
    fn domain_static_power(&self) -> f64;

    /// Energy cost of one frequency transition, in joules.
    fn transition_energy(&self) -> f64 {
        20e-6 // 20 µJ, order of magnitude from published DVFS measurements
    }
}

/// First-order CMOS power model.
///
/// `P_active = ceff · V² · f + leak · V`, `P_idle = idle_frac · P_active`'s
/// leakage part only — idle cores are clock-gated so dynamic power vanishes
/// but leakage (∝ V) remains.
///
/// ```
/// use eavs_cpu::freq::{Frequency, Voltage};
/// use eavs_cpu::opp::Opp;
/// use eavs_cpu::power::{CmosPowerModel, PowerModel};
///
/// let m = CmosPowerModel::new(0.9e-9, 0.12, 0.05);
/// let slow = Opp { freq: Frequency::from_mhz(500), volt: Voltage::from_mv(900) };
/// let fast = Opp { freq: Frequency::from_mhz(2000), volt: Voltage::from_mv(1250) };
/// assert!(m.active_power(fast) > 4.0 * m.active_power(slow)); // superlinear
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CmosPowerModel {
    /// Effective switched capacitance coefficient, in W / (V²·Hz).
    ceff: f64,
    /// Leakage coefficient in W/V (P_leak = leak · V).
    leak: f64,
    /// Domain static power in watts.
    domain_static_w: f64,
}

impl CmosPowerModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or NaN.
    pub fn new(ceff: f64, leak: f64, domain_static_w: f64) -> Self {
        assert!(
            ceff.is_finite() && ceff >= 0.0,
            "bad capacitance coefficient {ceff}"
        );
        assert!(leak.is_finite() && leak >= 0.0, "bad leakage {leak}");
        assert!(
            domain_static_w.is_finite() && domain_static_w >= 0.0,
            "bad static power {domain_static_w}"
        );
        CmosPowerModel {
            ceff,
            leak,
            domain_static_w,
        }
    }

    /// The dynamic (switching) component of active power at `opp`.
    pub fn dynamic_power(&self, opp: Opp) -> f64 {
        let v = opp.volt.volts();
        self.ceff * v * v * opp.freq.hz() as f64
    }

    /// The leakage component at `opp`.
    pub fn leakage_power(&self, opp: Opp) -> f64 {
        self.leak * opp.volt.volts()
    }
}

impl PowerModel for CmosPowerModel {
    fn active_power(&self, opp: Opp) -> f64 {
        self.dynamic_power(opp) + self.leakage_power(opp)
    }

    fn idle_power(&self, opp: Opp) -> f64 {
        self.leakage_power(opp)
    }

    fn domain_static_power(&self) -> f64 {
        self.domain_static_w
    }
}

/// Per-OPP measured power table.
#[derive(Clone, Debug)]
pub struct TablePowerModel {
    active_w: Vec<f64>,
    idle_w: Vec<f64>,
    domain_static_w: f64,
}

impl TablePowerModel {
    /// Creates a table model with per-OPP active and idle watts, index-
    /// aligned with the OPP table it will be used with.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or contain
    /// negative/NaN entries, or if active < idle anywhere.
    pub fn new(active_w: Vec<f64>, idle_w: Vec<f64>, domain_static_w: f64) -> Self {
        assert_eq!(active_w.len(), idle_w.len(), "power table length mismatch");
        assert!(!active_w.is_empty(), "empty power table");
        for (i, (&a, &idle)) in active_w.iter().zip(&idle_w).enumerate() {
            assert!(
                a.is_finite() && a >= 0.0 && idle.is_finite() && idle >= 0.0,
                "bad power entry at {i}"
            );
            assert!(a >= idle, "active < idle at index {i}");
        }
        assert!(domain_static_w >= 0.0, "bad static power");
        TablePowerModel {
            active_w,
            idle_w,
            domain_static_w,
        }
    }

    /// Validates that this table covers every index of `opps`.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn check_covers(&self, opps: &OppTable) {
        assert_eq!(
            self.active_w.len(),
            opps.len(),
            "power table does not cover the OPP table"
        );
    }

    /// Active power at table index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn active_at(&self, idx: usize) -> f64 {
        self.active_w[idx]
    }

    /// Idle power at table index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn idle_at(&self, idx: usize) -> f64 {
        self.idle_w[idx]
    }
}

/// A power model bound to a specific [`OppTable`] so the `Opp`-based trait
/// methods resolve by exact frequency match.
#[derive(Clone, Debug)]
pub struct BoundTablePowerModel {
    table: TablePowerModel,
    opps: OppTable,
}

impl BoundTablePowerModel {
    /// Binds a measurement table to its OPP table.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn new(table: TablePowerModel, opps: OppTable) -> Self {
        table.check_covers(&opps);
        BoundTablePowerModel { table, opps }
    }

    fn idx(&self, opp: Opp) -> usize {
        self.opps
            .index_of(opp.freq)
            .expect("opp not in bound table")
    }
}

impl PowerModel for BoundTablePowerModel {
    fn active_power(&self, opp: Opp) -> f64 {
        self.table.active_at(self.idx(opp))
    }

    fn idle_power(&self, opp: Opp) -> f64 {
        self.table.idle_at(self.idx(opp))
    }

    fn domain_static_power(&self) -> f64 {
        self.table.domain_static_w
    }
}

/// Per-OPP power lookup table derived once from a [`PowerModel`].
///
/// The energy-integration hot path runs for every frame of every simulated
/// session; evaluating an analytic model (`Ceff·V²·f + leak·V`) or a
/// dyn-dispatched table probe per segment is wasted work when the OPP table
/// is fixed at cluster construction. `PowerLut::derive` evaluates the model
/// once per operating point and the tick then reads plain `f64`s by index.
#[derive(Clone, Debug)]
pub struct PowerLut {
    active_w: Vec<f64>,
    idle_w: Vec<f64>,
    static_w: f64,
    transition_j: f64,
}

impl PowerLut {
    /// Evaluates `model` at every operating point of `opps`.
    pub fn derive(model: &dyn PowerModel, opps: &OppTable) -> Self {
        PowerLut {
            active_w: opps.iter().map(|&o| model.active_power(o)).collect(),
            idle_w: opps.iter().map(|&o| model.idle_power(o)).collect(),
            static_w: model.domain_static_power(),
            transition_j: model.transition_energy(),
        }
    }

    /// Active power of one core at OPP index `idx`, in watts.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the derived table.
    pub fn active_at(&self, idx: usize) -> f64 {
        self.active_w[idx]
    }

    /// Idle (clock-gated) power of one core at OPP index `idx`, in watts.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the derived table.
    pub fn idle_at(&self, idx: usize) -> f64 {
        self.idle_w[idx]
    }

    /// Always-on domain power, in watts.
    pub fn static_w(&self) -> f64 {
        self.static_w
    }

    /// Energy cost of one frequency transition, in joules.
    pub fn transition_j(&self) -> f64 {
        self.transition_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{Frequency, Voltage};

    fn opp(mhz: u32, mv: u32) -> Opp {
        Opp {
            freq: Frequency::from_mhz(mhz),
            volt: Voltage::from_mv(mv),
        }
    }

    #[test]
    fn cmos_components() {
        let m = CmosPowerModel::new(1e-9, 0.1, 0.05);
        let o = opp(1000, 1000); // 1 GHz at 1 V
        assert!((m.dynamic_power(o) - 1.0).abs() < 1e-9); // 1e-9 * 1 * 1e9
        assert!((m.leakage_power(o) - 0.1).abs() < 1e-12);
        assert!((m.active_power(o) - 1.1).abs() < 1e-9);
        assert!((m.idle_power(o) - 0.1).abs() < 1e-12);
        assert!((m.domain_static_power() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn cmos_power_is_superlinear_in_frequency() {
        let m = CmosPowerModel::new(0.9e-9, 0.12, 0.0);
        // 4x frequency with realistic voltage scaling -> far more than 4x power.
        let p_slow = m.active_power(opp(500, 900));
        let p_fast = m.active_power(opp(2000, 1250));
        assert!(p_fast / p_slow > 4.0, "ratio {}", p_fast / p_slow);
        // Therefore energy per cycle is higher at the fast OPP:
        let e_slow = p_slow / 500e6;
        let e_fast = p_fast / 2000e6;
        assert!(e_fast > e_slow, "energy/cycle must grow with frequency");
    }

    #[test]
    fn energy_per_cycle_with_idle_makes_race_nontrivial() {
        // With non-trivial idle power, total energy for a fixed job +
        // deadline window has an interior optimum; verify at least that the
        // fastest OPP is not energy-optimal for the active+idle sum.
        let m = CmosPowerModel::new(0.9e-9, 0.12, 0.05);
        let opps = [
            opp(500, 900),
            opp(1000, 1000),
            opp(1500, 1100),
            opp(2000, 1250),
        ];
        let cycles = 5e8; // 0.5 Gcycle job
        let window = 1.0; // 1 s deadline window
        let energy = |o: Opp| {
            let busy = cycles / o.freq.hz() as f64;
            assert!(busy <= window);
            m.active_power(o) * busy + m.idle_power(o) * (window - busy)
        };
        let e: Vec<f64> = opps.iter().map(|&o| energy(o)).collect();
        let min_idx = e
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_ne!(min_idx, 3, "racing to max should not be optimal: {e:?}");
    }

    #[test]
    fn table_model_lookup() {
        let opps = OppTable::from_mhz_mv(&[(500, 900), (1000, 1000)]).unwrap();
        let t = TablePowerModel::new(vec![0.3, 1.0], vec![0.05, 0.09], 0.04);
        let bound = BoundTablePowerModel::new(t, opps.clone());
        assert_eq!(bound.active_power(opps.opp(0)), 0.3);
        assert_eq!(bound.idle_power(opps.opp(1)), 0.09);
        assert_eq!(bound.domain_static_power(), 0.04);
    }

    #[test]
    #[should_panic(expected = "active < idle")]
    fn table_rejects_inverted_powers() {
        TablePowerModel::new(vec![0.1], vec![0.2], 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn table_rejects_mismatched_lengths() {
        TablePowerModel::new(vec![0.1, 0.2], vec![0.05], 0.0);
    }

    #[test]
    fn default_transition_energy_is_small() {
        let m = CmosPowerModel::new(1e-9, 0.1, 0.0);
        assert!(m.transition_energy() < 1e-3);
    }

    #[test]
    fn lut_matches_model_at_every_opp() {
        let opps =
            OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap();
        let m = CmosPowerModel::new(0.9e-9, 0.12, 0.05);
        let lut = PowerLut::derive(&m, &opps);
        for idx in 0..opps.len() {
            let o = opps.opp(idx);
            assert_eq!(lut.active_at(idx), m.active_power(o), "active @ {idx}");
            assert_eq!(lut.idle_at(idx), m.idle_power(o), "idle @ {idx}");
        }
        assert_eq!(lut.static_w(), m.domain_static_power());
        assert_eq!(lut.transition_j(), m.transition_energy());
    }
}
