//! F14: governor decision overhead.
//!
//! The paper argues the scheme's runtime cost is negligible; this bench
//! measures one EAVS decision (snapshot → demand → OPP) against one
//! `ondemand` sample, in nanoseconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eavs_core::governor::{EavsConfig, EavsGovernor, InFlightMeta, PipelineSnapshot};
use eavs_core::predictor::{FrameMeta, Hybrid};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::freq::{Cycles, Frequency};
use eavs_cpu::load::LoadSample;
use eavs_cpu::soc::SocModel;
use eavs_governors::{CpufreqGovernor, Ondemand};
use eavs_sim::time::{SimDuration, SimTime};
use eavs_video::display::PlaybackPhase;
use eavs_video::frame::FrameType;

fn snapshot() -> PipelineSnapshot {
    let meta = FrameMeta {
        index: 0,
        frame_type: FrameType::P,
        size_bytes: 25_000,
    };
    PipelineSnapshot {
        now: SimTime::from_millis(1000),
        phase: PlaybackPhase::Playing,
        next_vsync: SimTime::from_millis(1010),
        frame_period: SimDuration::from_millis(33),
        decoded_len: 2,
        in_flight: Some(InFlightMeta {
            meta,
            executed: Cycles::from_mega(5.0),
        }),
        upcoming: vec![meta; 8],
    }
}

fn bench_governors(c: &mut Criterion) {
    let table = SocModel::Flagship2016.opp_table();
    let limits = PolicyLimits::full(&table);

    let mut eavs = EavsGovernor::new(Box::new(Hybrid::default()), EavsConfig::default());
    for i in 0..100u32 {
        eavs.observe_decode(
            FrameMeta {
                index: 0,
                frame_type: FrameType::P,
                size_bytes: 20_000 + i * 100,
            },
            Cycles::from_mega(18.0 + (i % 7) as f64),
        );
    }
    let snap = snapshot();
    c.bench_function("eavs_decide", |b| {
        b.iter(|| {
            let idx = eavs.decide(black_box(&snap), &table, limits, 4);
            black_box(idx)
        })
    });

    let mut ondemand = Ondemand::new();
    let sample = LoadSample {
        now: SimTime::from_millis(1000),
        window: SimDuration::from_millis(10),
        busy_fraction: 0.63,
        cur_freq: Frequency::from_mhz(1076),
        cur_index: 5,
    };
    c.bench_function("ondemand_on_sample", |b| {
        b.iter(|| {
            let idx = ondemand.on_sample(black_box(&sample), &table, limits);
            black_box(idx)
        })
    });

    c.bench_function("eavs_observe_decode", |b| {
        let meta = FrameMeta {
            index: 0,
            frame_type: FrameType::B,
            size_bytes: 9_000,
        };
        b.iter(|| {
            eavs.observe_decode(black_box(meta), Cycles::from_mega(8.0));
        })
    });
}

criterion_group!(benches, bench_governors);
criterion_main!(benches);
