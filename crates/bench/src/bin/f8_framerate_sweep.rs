//! Regenerates experiment `f8_framerate_sweep` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f8_framerate_sweep")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
