//! Plain-text table and CSV rendering for the experiment harness.
//!
//! Every figure/table binary prints an aligned ASCII table to stdout (the
//! "paper row" view) and can also emit CSV for plotting.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An ASCII table builder.
///
/// ```
/// use eavs_metrics::table::Table;
///
/// let mut t = Table::new(&["governor", "energy (J)"]);
/// t.row(&["ondemand", "41.2"]);
/// t.row(&["eavs", "27.9"]);
/// let out = t.render();
/// assert!(out.contains("governor"));
/// assert!(out.lines().count() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`Table::set_align`]).
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        let mut aligns = vec![Align::Right; headers.len()];
        aligns[0] = Align::Left;
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn set_title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides one column's alignment.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn set_align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count doesn't match the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (headers + rows), RFC-4180 quoting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let encoded: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&encoded.join(","));
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Quotes a CSV field when needed.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a ratio as a signed percentage ("-23.4%").
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "23456"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w || l.starts_with('-')));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn title_precedes_table() {
        let mut t = Table::new(&["x"]);
        t.set_title("F5: energy");
        assert!(t.render().starts_with("== F5: energy =="));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_output_and_escaping() {
        let mut t = Table::new(&["k", "v"]);
        t.row(&["plain", "1"]);
        t.row(&["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,v");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(3.45678, 2), "3.46");
        assert_eq!(fmt_pct(-0.234), "-23.4%");
        assert_eq!(fmt_pct(0.05), "+5.0%");
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = Table::new(&["µ", "σ"]);
        t.row(&["1", "2"]);
        let out = t.render();
        assert!(out.contains('µ'));
    }
}
