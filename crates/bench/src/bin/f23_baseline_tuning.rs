//! Regenerates experiment `f23_baseline_tuning` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f23_baseline_tuning")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
