//! Frequency, voltage and cycle-count units.
//!
//! Newtypes keep kHz, mV, cycles and joules from being mixed up across the
//! DVFS model. Frequencies follow the Linux cpufreq convention of integer
//! kilohertz.

use eavs_sim::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A CPU clock frequency in kilohertz (the Linux cpufreq unit).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from kilohertz.
    pub const fn from_khz(khz: u32) -> Self {
        Frequency(khz)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u32) -> Self {
        Frequency(mhz * 1_000)
    }

    /// The frequency in kilohertz.
    pub const fn khz(self) -> u32 {
        self.0
    }

    /// The frequency in megahertz (truncating).
    pub const fn mhz(self) -> u32 {
        self.0 / 1_000
    }

    /// The frequency in hertz.
    pub const fn hz(self) -> u64 {
        self.0 as u64 * 1_000
    }

    /// The frequency in gigahertz as a float.
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Cycles executed in `dt` at this frequency.
    pub fn cycles_in(self, dt: SimDuration) -> Cycles {
        Cycles(self.hz() as f64 * dt.as_secs_f64())
    }

    /// Time needed to execute `cycles` at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn time_for(self, cycles: Cycles) -> SimDuration {
        assert!(self.0 > 0, "zero frequency cannot execute work");
        SimDuration::from_secs_f64(cycles.get() / self.hz() as f64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}GHz", self.ghz())
        } else {
            write!(f, "{}MHz", self.mhz())
        }
    }
}

/// A supply voltage in millivolts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Voltage(u32);

impl Voltage {
    /// Creates a voltage from millivolts.
    pub const fn from_mv(mv: u32) -> Self {
        Voltage(mv)
    }

    /// The voltage in millivolts.
    pub const fn mv(self) -> u32 {
        self.0
    }

    /// The voltage in volts.
    pub fn volts(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

/// An amount of CPU work in clock cycles.
///
/// Fractional cycles are allowed: workload models produce real-valued cycle
/// estimates, and execution accounting splits work across intervals.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Cycles(f64);

impl Cycles {
    /// Zero work.
    pub const ZERO: Cycles = Cycles(0.0);

    /// Creates a cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative or NaN.
    pub fn new(cycles: f64) -> Self {
        assert!(
            cycles.is_finite() && cycles >= 0.0,
            "invalid cycle count {cycles}"
        );
        Cycles(cycles)
    }

    /// Creates a cycle count from millions of cycles.
    pub fn from_mega(mcycles: f64) -> Self {
        Cycles::new(mcycles * 1e6)
    }

    /// The raw cycle count.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The count in millions of cycles.
    pub fn mega(self) -> f64 {
        self.0 / 1e6
    }

    /// `true` if no work remains (within floating tolerance of a cycle).
    pub fn is_zero(self) -> bool {
        self.0 < 1.0
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles((self.0 - other.0).max(0.0))
    }

    /// Scales the cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> Cycles {
        Cycles::new(self.0 * factor)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        assert!(self.0 >= rhs.0, "cycle underflow: {} - {}", self.0, rhs.0);
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Self {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Mcyc", self.mega())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_unit_conversions() {
        let f = Frequency::from_mhz(1_500);
        assert_eq!(f.khz(), 1_500_000);
        assert_eq!(f.mhz(), 1_500);
        assert_eq!(f.hz(), 1_500_000_000);
        assert!((f.ghz() - 1.5).abs() < 1e-12);
        assert_eq!(f.to_string(), "1.50GHz");
        assert_eq!(Frequency::from_mhz(600).to_string(), "600MHz");
    }

    #[test]
    fn cycles_time_roundtrip() {
        let f = Frequency::from_mhz(1_000); // 1e9 Hz
        let dt = SimDuration::from_millis(10);
        let c = f.cycles_in(dt);
        assert!((c.get() - 1e7).abs() < 1.0);
        let back = f.time_for(c);
        assert_eq!(back, dt);
    }

    #[test]
    fn time_for_scales_inversely_with_frequency() {
        let work = Cycles::from_mega(100.0);
        let slow = Frequency::from_mhz(500).time_for(work);
        let fast = Frequency::from_mhz(2_000).time_for(work);
        assert_eq!(slow.as_nanos(), 4 * fast.as_nanos());
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_cannot_run() {
        Frequency::from_khz(0).time_for(Cycles::from_mega(1.0));
    }

    #[test]
    fn voltage_units() {
        let v = Voltage::from_mv(1_150);
        assert_eq!(v.mv(), 1_150);
        assert!((v.volts() - 1.15).abs() < 1e-12);
        assert_eq!(v.to_string(), "1150mV");
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::from_mega(3.0);
        let b = Cycles::from_mega(1.0);
        assert_eq!((a + b).mega(), 4.0);
        assert_eq!((a - b).mega(), 2.0);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.scale(2.0).mega(), 6.0);
        assert!(Cycles::new(0.5).is_zero());
        assert!(!Cycles::from_mega(1.0).is_zero());
        let total: Cycles = [a, b].into_iter().sum();
        assert_eq!(total.mega(), 4.0);
    }

    #[test]
    #[should_panic(expected = "cycle underflow")]
    fn cycle_underflow_panics() {
        let _ = Cycles::from_mega(1.0) - Cycles::from_mega(2.0);
    }

    #[test]
    #[should_panic(expected = "invalid cycle count")]
    fn negative_cycles_rejected() {
        Cycles::new(-1.0);
    }

    #[test]
    fn display_cycles() {
        assert_eq!(Cycles::from_mega(12.5).to_string(), "12.50Mcyc");
    }
}
