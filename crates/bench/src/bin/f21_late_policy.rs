//! Regenerates experiment `f21_late_policy` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f21_late_policy")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
