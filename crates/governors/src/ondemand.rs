//! The `ondemand` governor (Linux `drivers/cpufreq/ondemand.c`).
//!
//! Semantics reproduced:
//! * load above `up_threshold` → jump straight to the maximum frequency;
//! * otherwise pick the lowest frequency ≥ `load% × max_freq`
//!   (proportional scaling against the *maximum*, not the current, rate);
//! * `sampling_down_factor` multiplies the sampling period while at the
//!   maximum frequency, so a busy CPU is re-evaluated less often (the
//!   kernel's optimization to avoid bouncing off max).

use crate::governor::{lowest_index_for_khz, CpufreqGovernor};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;

/// Tunables (sysfs `ondemand/*`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OndemandTunables {
    /// Load percentage above which the governor jumps to max.
    pub up_threshold: f64,
    /// Base sampling period.
    pub sampling_rate: SimDuration,
    /// Periods to stay at max before re-evaluating downward.
    pub sampling_down_factor: u32,
}

impl Default for OndemandTunables {
    fn default() -> Self {
        OndemandTunables {
            up_threshold: 95.0,
            sampling_rate: SimDuration::from_millis(10),
            sampling_down_factor: 1,
        }
    }
}

/// The `ondemand` governor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ondemand {
    tunables: OndemandTunables,
    /// Remaining high-rate periods to hold max (sampling_down_factor).
    down_skip: u32,
}

impl Ondemand {
    /// Creates the governor with default tunables.
    pub fn new() -> Self {
        Ondemand::default()
    }

    /// Creates the governor with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if `up_threshold` is not in `(0, 100]` or
    /// `sampling_down_factor == 0`.
    pub fn with_tunables(tunables: OndemandTunables) -> Self {
        assert!(
            tunables.up_threshold > 0.0 && tunables.up_threshold <= 100.0,
            "bad up_threshold"
        );
        assert!(
            tunables.sampling_down_factor > 0,
            "bad sampling_down_factor"
        );
        Ondemand {
            tunables,
            down_skip: 0,
        }
    }

    /// The tunables in force.
    pub fn tunables(&self) -> OndemandTunables {
        self.tunables
    }

    /// The [`on_sample`](CpufreqGovernor::on_sample) decision over a
    /// precomputed [`DecisionLut`](crate::kind::DecisionLut) — same state
    /// transitions, same float comparisons, no table walk.
    pub(crate) fn decide_lut(
        &mut self,
        sample: &LoadSample,
        lut: &crate::kind::DecisionLut,
    ) -> OppIndex {
        let load = sample.load_pct();
        if load > self.tunables.up_threshold {
            self.down_skip = self.tunables.sampling_down_factor.saturating_sub(1);
            return lut.max_index();
        }
        if self.down_skip > 0 && sample.cur_index == lut.max_index() {
            self.down_skip -= 1;
            return lut.max_index();
        }
        lut.lookup(load / 100.0 * lut.hw_max_khz())
    }
}

impl CpufreqGovernor for Ondemand {
    fn name(&self) -> &'static str {
        "ondemand"
    }

    fn sampling_interval(&self) -> SimDuration {
        self.tunables.sampling_rate
    }

    fn on_sample(
        &mut self,
        sample: &LoadSample,
        table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        let load = sample.load_pct();
        if load > self.tunables.up_threshold {
            self.down_skip = self.tunables.sampling_down_factor.saturating_sub(1);
            return limits.max_index;
        }
        if self.down_skip > 0 && sample.cur_index == limits.max_index {
            self.down_skip -= 1;
            return limits.max_index;
        }
        // Proportional: lowest f >= load% of the hardware max.
        let target_khz = load / 100.0 * table.max_freq().khz() as f64;
        lowest_index_for_khz(table, limits, target_khz)
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.down_skip != 0 {
            // Mid-flight sampling_down_factor state; not reconstructible
            // from tunables alone.
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_f64(self.tunables.up_threshold);
        fp.write_u64(self.tunables.sampling_rate.as_nanos());
        fp.write_u32(self.tunables.sampling_down_factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_cpu::freq::Frequency;
    use eavs_sim::time::SimTime;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn sample(load_pct: f64, cur_index: OppIndex) -> LoadSample {
        LoadSample {
            now: SimTime::from_secs(1),
            window: SimDuration::from_millis(10),
            busy_fraction: load_pct / 100.0,
            cur_freq: Frequency::from_mhz(1000),
            cur_index,
        }
    }

    #[test]
    fn jumps_to_max_above_threshold() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Ondemand::new();
        assert_eq!(g.on_sample(&sample(96.0, 0), &t, limits), 3);
        assert_eq!(g.on_sample(&sample(100.0, 0), &t, limits), 3);
    }

    #[test]
    fn proportional_below_threshold() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Ondemand::new();
        // 40% of 2000 MHz = 800 MHz -> lowest OPP >= 800 is 1000 MHz.
        assert_eq!(g.on_sample(&sample(40.0, 2), &t, limits), 1);
        // 10% -> 200 MHz -> slowest OPP.
        assert_eq!(g.on_sample(&sample(10.0, 2), &t, limits), 0);
        // 80% -> 1600 MHz -> 2000 MHz OPP.
        assert_eq!(g.on_sample(&sample(80.0, 2), &t, limits), 3);
    }

    #[test]
    fn sampling_down_factor_holds_max() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Ondemand::with_tunables(OndemandTunables {
            sampling_down_factor: 3,
            ..OndemandTunables::default()
        });
        assert_eq!(g.on_sample(&sample(99.0, 0), &t, limits), 3);
        // Two low samples are absorbed while at max.
        assert_eq!(g.on_sample(&sample(5.0, 3), &t, limits), 3);
        assert_eq!(g.on_sample(&sample(5.0, 3), &t, limits), 3);
        // Third re-evaluates downward.
        assert_eq!(g.on_sample(&sample(5.0, 3), &t, limits), 0);
    }

    #[test]
    fn respects_policy_limits() {
        let t = table();
        let limits = PolicyLimits {
            min_index: 1,
            max_index: 2,
        };
        let mut g = Ondemand::new();
        assert_eq!(g.on_sample(&sample(100.0, 1), &t, limits), 2);
        assert_eq!(g.on_sample(&sample(0.0, 1), &t, limits), 1);
    }

    #[test]
    fn default_tunables_match_kernel() {
        let t = OndemandTunables::default();
        assert_eq!(t.up_threshold, 95.0);
        assert_eq!(t.sampling_rate, SimDuration::from_millis(10));
        assert_eq!(t.sampling_down_factor, 1);
    }

    #[test]
    #[should_panic(expected = "bad up_threshold")]
    fn invalid_threshold_rejected() {
        Ondemand::with_tunables(OndemandTunables {
            up_threshold: 0.0,
            ..OndemandTunables::default()
        });
    }
}
