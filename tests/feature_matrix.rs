//! Integration tests for the extension features: thermal, background
//! load, cluster placement (static and automatic), and the CLI layer —
//! exercised together and checked for determinism.

use eavs::cli;
use eavs::cpu::thermal::{ThermalModel, ThrottleController};
use eavs::net::radio::RadioModel;
use eavs::power::{DevicePowerModel, RrcRadioModel};
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{ClusterSelect, GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::tracegen::net_gen::NetworkProfile;
use eavs::video::manifest::Manifest;

fn eavs() -> GovernorChoice {
    GovernorChoice::Eavs(EavsGovernor::new(
        Box::new(Hybrid::default()),
        EavsConfig::default(),
    ))
}

fn manifest_480p(secs: u64) -> Manifest {
    Manifest::single(1_500, 854, 480, SimDuration::from_secs(secs), 30)
}

#[test]
fn auto_placement_deterministic_and_conserves_accounting() {
    let build = || {
        StreamingSession::builder(eavs())
            .manifest(manifest_480p(20))
            .cluster(ClusterSelect::Auto)
            .seed(11)
            .run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.cpu_joules().to_bits(), b.cpu_joules().to_bits());
    assert_eq!(a.migrations, b.migrations);
    assert!(a.migrations >= 1);
    assert_eq!(&*a.cluster, "auto");
    // Both clusters' energy is accounted: the total must exceed the
    // active cluster's busy energy alone and every component is finite.
    assert!(a.cpu_energy.busy_j > 0.0);
    assert!(a.cpu_energy.static_j > 0.0);
    assert!(a.cpu_energy.transition_j > 0.0, "migration energy charged");
    assert_eq!(a.qoe.frames_displayed, a.qoe.total_frames);
}

#[test]
fn auto_placement_beats_wrong_static_choice_on_light_content() {
    let run_with = |select| {
        StreamingSession::builder(eavs())
            .manifest(manifest_480p(30))
            .cluster(select)
            .seed(4)
            .run()
    };
    let auto = run_with(ClusterSelect::Auto);
    let big = run_with(ClusterSelect::Big);
    assert!(
        auto.cpu_joules() < big.cpu_joules() * 0.7,
        "auto {:.2} J should be far below static big {:.2} J on 480p",
        auto.cpu_joules(),
        big.cpu_joules()
    );
    assert_eq!(auto.qoe.late_vsyncs, 0);
}

#[test]
fn thermal_and_background_compose_with_eavs() {
    let report = StreamingSession::builder(eavs())
        .manifest(Manifest::single(
            6_000,
            1920,
            1080,
            SimDuration::from_secs(15),
            30,
        ))
        .content(ContentProfile::Film)
        .thermal(
            ThermalModel::phone_default(),
            ThrottleController::phone_default(),
        )
        .background_load(0.25, SimDuration::from_millis(80))
        .seed(9)
        .run();
    assert!(report.peak_temp_c.expect("thermal on") > 25.0);
    assert!(report.background_jobs > 50);
    assert_eq!(report.qoe.frames_displayed, report.qoe.total_frames);
    assert_eq!(report.qoe.late_vsyncs, 0);
}

#[test]
fn radio_and_network_presets_compose() {
    // Every (network preset, radio model) pair completes a short ABR-free
    // session deterministically.
    for profile in NetworkProfile::ALL {
        for radio in [RadioModel::wifi(), RadioModel::lte(), RadioModel::umts_3g()] {
            let report = StreamingSession::builder(eavs())
                .manifest(manifest_480p(10))
                .network(profile.generate(SimDuration::from_secs(60), 3))
                .radio(radio)
                .seed(3)
                .run();
            assert_eq!(
                report.qoe.frames_displayed, report.qoe.total_frames,
                "{profile}: playback incomplete"
            );
            assert!(report.radio.energy_j > 0.0);
        }
    }
}

#[test]
fn power_model_composes_with_thermal_and_radio() {
    // The whole-device power model stacks on every other extension:
    // thermal throttling, background load, and the legacy net-layer
    // radio accounting all run in the same session while the device
    // model fills in its own component counters post-hoc.
    let build = |power: DevicePowerModel| {
        StreamingSession::builder(eavs())
            .manifest(manifest_480p(15))
            .content(ContentProfile::Sport)
            .thermal(
                ThermalModel::phone_default(),
                ThrottleController::phone_default(),
            )
            .background_load(0.2, SimDuration::from_millis(100))
            .radio(RadioModel::lte())
            .power(power)
            .seed(17)
            .run()
    };
    let report = build(DevicePowerModel::phone());
    assert!(report.peak_temp_c.expect("thermal on") > 25.0);
    assert!(
        report.radio.energy_j > 0.0,
        "legacy net radio still charged"
    );
    assert!(report.power.radio_j > 0.0);
    assert!(report.power.display_j > 0.0);
    assert!(report.power.decoder_j > 0.0);
    assert!(report.total_joules() > report.cpu_joules() + report.radio.energy_j);
    // The RRC residencies partition the whole session.
    let residency = report.power.radio_idle_time
        + report.power.radio_promo_time
        + report.power.radio_active_time
        + report.power.radio_tail_time;
    assert_eq!(residency, report.session_length);

    // A longer tail timer keeps the radio out of IDLE for longer and can
    // only raise energy — and the rest of the session is untouched.
    let mut long_tail = DevicePowerModel::phone();
    long_tail.radio = Some(RrcRadioModel::lte().with_tail_timer(SimDuration::from_secs(30)));
    let long = build(long_tail);
    assert!(long.power.radio_j >= report.power.radio_j);
    assert!(long.power.radio_idle_time <= report.power.radio_idle_time);
    assert_eq!(long.cpu_joules().to_bits(), report.cpu_joules().to_bits());
    assert_eq!(long.events_processed, report.events_processed);
}

#[test]
fn cli_layer_matches_direct_builder() {
    // The CLI must produce the same session a hand-built builder does.
    let args = cli::RunArgs {
        duration_s: 10,
        bitrate_kbps: 1_500,
        width: 854,
        height: 480,
        seed: 21,
        ..cli::RunArgs::default()
    };
    let via_cli = cli::run_session(&args, "eavs").expect("cli run");
    let direct = StreamingSession::builder(eavs())
        .manifest(manifest_480p(10))
        .seed(21)
        .run();
    assert_eq!(
        via_cli.cpu_joules().to_bits(),
        direct.cpu_joules().to_bits()
    );
    assert_eq!(via_cli.transitions, direct.transitions);
}

#[test]
fn sysfs_composes_with_little_cluster() {
    let direct = StreamingSession::builder(eavs())
        .manifest(manifest_480p(10))
        .cluster(ClusterSelect::Little)
        .seed(8)
        .run();
    let sysfs = StreamingSession::builder(eavs())
        .manifest(manifest_480p(10))
        .cluster(ClusterSelect::Little)
        .drive_via_sysfs(true)
        .seed(8)
        .run();
    assert_eq!(direct.cpu_joules().to_bits(), sysfs.cpu_joules().to_bits());
    assert_eq!(&*direct.cluster, "flagship2016-little");
}
