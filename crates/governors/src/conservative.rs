//! The `conservative` governor (Linux `drivers/cpufreq/conservative.c`).
//!
//! Like `ondemand` but moves in small steps: load above `up_threshold`
//! raises the target by `freq_step` percent of the maximum frequency; load
//! below `down_threshold` lowers it by the same step. Designed for
//! battery-powered devices where gradual ramps were thought gentler.

use crate::governor::CpufreqGovernor;
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;

/// Tunables (sysfs `conservative/*`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConservativeTunables {
    /// Load percentage above which the frequency steps up.
    pub up_threshold: f64,
    /// Load percentage below which the frequency steps down.
    pub down_threshold: f64,
    /// Step size as a percentage of the maximum frequency.
    pub freq_step_pct: f64,
    /// Sampling period.
    pub sampling_rate: SimDuration,
}

impl Default for ConservativeTunables {
    fn default() -> Self {
        ConservativeTunables {
            up_threshold: 80.0,
            down_threshold: 20.0,
            freq_step_pct: 5.0,
            sampling_rate: SimDuration::from_millis(10),
        }
    }
}

/// The `conservative` governor.
#[derive(Clone, Copy, Debug)]
pub struct Conservative {
    tunables: ConservativeTunables,
    /// The requested target in kHz (tracked independently of the table so
    /// repeated small steps accumulate, as in the kernel).
    requested_khz: Option<f64>,
}

impl Conservative {
    /// Creates the governor with default tunables.
    pub fn new() -> Self {
        Conservative::with_tunables(ConservativeTunables::default())
    }

    /// Creates the governor with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < down_threshold < up_threshold <= 100` and
    /// `freq_step_pct > 0`.
    pub fn with_tunables(tunables: ConservativeTunables) -> Self {
        assert!(
            tunables.down_threshold > 0.0
                && tunables.down_threshold < tunables.up_threshold
                && tunables.up_threshold <= 100.0,
            "bad thresholds"
        );
        assert!(tunables.freq_step_pct > 0.0, "bad freq_step");
        Conservative {
            tunables,
            requested_khz: None,
        }
    }

    /// The [`on_sample`](CpufreqGovernor::on_sample) decision over a
    /// precomputed [`DecisionLut`](crate::kind::DecisionLut) — identical
    /// step accumulation and final `>= requested - 1.0` selection.
    pub(crate) fn decide_lut(
        &mut self,
        sample: &LoadSample,
        lut: &crate::kind::DecisionLut,
    ) -> OppIndex {
        let max_khz = lut.khz_at(lut.max_index());
        let min_khz = lut.khz_at(lut.min_index());
        let step = self.tunables.freq_step_pct / 100.0 * lut.hw_max_khz();
        let mut requested = self
            .requested_khz
            .unwrap_or(sample.cur_freq.khz() as f64)
            .clamp(min_khz, max_khz);
        let load = sample.load_pct();
        if load > self.tunables.up_threshold {
            requested = (requested + step).min(max_khz);
        } else if load < self.tunables.down_threshold {
            requested = (requested - step).max(min_khz);
        }
        self.requested_khz = Some(requested);
        lut.lookup(requested - 1.0)
    }
}

impl Default for Conservative {
    fn default() -> Self {
        Conservative::new()
    }
}

impl CpufreqGovernor for Conservative {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn sampling_interval(&self) -> SimDuration {
        self.tunables.sampling_rate
    }

    fn on_sample(
        &mut self,
        sample: &LoadSample,
        table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        let max_khz = table.freq(limits.max_index).khz() as f64;
        let min_khz = table.freq(limits.min_index).khz() as f64;
        let step = self.tunables.freq_step_pct / 100.0 * table.max_freq().khz() as f64;
        let mut requested = self
            .requested_khz
            .unwrap_or(sample.cur_freq.khz() as f64)
            .clamp(min_khz, max_khz);
        let load = sample.load_pct();
        if load > self.tunables.up_threshold {
            requested = (requested + step).min(max_khz);
        } else if load < self.tunables.down_threshold {
            requested = (requested - step).max(min_khz);
        }
        self.requested_khz = Some(requested);
        // The kernel uses RELATION_C (closest); RELATION_L on the running
        // request is equivalent for monotone steps and simpler.
        let mut idx = limits.max_index;
        for i in limits.min_index..=limits.max_index {
            if table.freq(i).khz() as f64 >= requested - 1.0 {
                idx = i;
                break;
            }
        }
        idx
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.requested_khz.is_some() {
            // An accumulated step target is learned state.
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_f64(self.tunables.up_threshold);
        fp.write_f64(self.tunables.down_threshold);
        fp.write_f64(self.tunables.freq_step_pct);
        fp.write_u64(self.tunables.sampling_rate.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_cpu::freq::Frequency;
    use eavs_sim::time::SimTime;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn sample(load_pct: f64, cur_mhz: u32, cur_index: OppIndex) -> LoadSample {
        LoadSample {
            now: SimTime::from_secs(1),
            window: SimDuration::from_millis(10),
            busy_fraction: load_pct / 100.0,
            cur_freq: Frequency::from_mhz(cur_mhz),
            cur_index,
        }
    }

    #[test]
    fn steps_up_gradually_not_jumping_to_max() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Conservative::new();
        // From 500 MHz at full load: +100 MHz per sample (5% of 2 GHz).
        // After one sample the request is 600 -> OPP 1000 MHz, not max.
        let idx = g.on_sample(&sample(100.0, 500, 0), &t, limits);
        assert_eq!(idx, 1);
        // It takes many more samples to reach max.
        let mut last = idx;
        for _ in 0..20 {
            last = g.on_sample(&sample(100.0, t.freq(last).mhz(), last), &t, limits);
        }
        assert_eq!(last, 3, "sustained load eventually reaches max");
    }

    #[test]
    fn steps_down_on_low_load() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Conservative::new();
        // Start high, idle load: request decays 100 MHz per sample.
        let mut idx = 3;
        for _ in 0..20 {
            idx = g.on_sample(&sample(5.0, t.freq(idx).mhz(), idx), &t, limits);
        }
        assert_eq!(idx, 0, "sustained idleness reaches min");
    }

    #[test]
    fn holds_inside_hysteresis_band() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Conservative::new();
        // 50% load is between the thresholds: no movement.
        let first = g.on_sample(&sample(50.0, 1000, 1), &t, limits);
        let second = g.on_sample(&sample(50.0, 1000, 1), &t, limits);
        assert_eq!(first, 1);
        assert_eq!(second, 1);
    }

    #[test]
    fn respects_limits() {
        let t = table();
        let limits = PolicyLimits {
            min_index: 1,
            max_index: 2,
        };
        let mut g = Conservative::new();
        let mut idx = 1;
        for _ in 0..40 {
            idx = g.on_sample(&sample(100.0, t.freq(idx).mhz(), idx), &t, limits);
        }
        assert_eq!(idx, 2);
        for _ in 0..40 {
            idx = g.on_sample(&sample(1.0, t.freq(idx).mhz(), idx), &t, limits);
        }
        assert_eq!(idx, 1);
    }

    #[test]
    #[should_panic(expected = "bad thresholds")]
    fn inverted_thresholds_rejected() {
        Conservative::with_tunables(ConservativeTunables {
            up_threshold: 20.0,
            down_threshold: 80.0,
            ..ConservativeTunables::default()
        });
    }
}
