//! The streaming session: the full system wired together.
//!
//! A [`StreamingSession`] couples the CPU cluster, the decode pipeline and
//! display clock, the segment downloader with its ABR, and a governor
//! (baseline or EAVS) inside one deterministic event loop. Running it
//! yields a [`SessionReport`] with energy, QoE and frequency statistics —
//! the primitive every experiment in the repository is built from.
//!
//! ## Event flow
//!
//! ```text
//! DownloadDone ─▶ frames into pipeline ─▶ decode starts on CPU core 0
//!      ▲                                        │ DecodeDone
//!      └── ABR + buffer cap ◀── Vsync ◀─────────┘ (governor feedback)
//! ```
//!
//! The governor is invoked on every pipeline event (EAVS) or on its
//! sampling tick (baselines); every frequency change recomputes and
//! reschedules the in-flight decode's completion event.

use crate::framestats::FrameCycleStats;
use crate::governor::{EavsGovernor, InFlightMeta, PipelineSnapshot};
use crate::predictor::{FrameMeta, SessionPrior};
use crate::report::SessionReport;
use crate::selector::{required_hz, DemandItem};
use eavs_cpu::cluster::{Cluster, PolicyLimits};
use eavs_cpu::freq::{Cycles, Frequency};
use eavs_cpu::load::LoadMonitor;
use eavs_cpu::soc::SocModel;
use eavs_cpu::thermal::{ThermalModel, ThrottleController};
use eavs_faults::{AmbientStep, FaultPlan, FaultSchedule};
use eavs_governors::{CpufreqGovernor, GovernorKind, LutCache};
use eavs_metrics::timeseries::StepSeries;
use eavs_net::abr::{AbrAlgorithm, AbrContext, FixedAbr};
use eavs_net::bandwidth::BandwidthTrace;
use eavs_net::download::{Downloader, RetryPolicy};
use eavs_net::radio::RadioModel;
use eavs_obs::{Phase, PhaseProfile, SharedSink, TraceEvent};
use eavs_power::DevicePowerModel;
use eavs_sim::engine::{Scheduler, Simulation, StepOutcome, World};
use eavs_sim::fingerprint::{Fingerprint, Fingerprinter};
use eavs_sim::queue::EventId;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_sysfs::CpufreqFs;
use eavs_trace::content::ContentProfile;
use eavs_trace::memo::{self, DecisionRecord, DecisionTimeline};
use eavs_trace::video_gen::VideoGenerator;
use eavs_video::display::{LatePolicy, Playback, PlaybackPhase, VsyncOutcome};
use eavs_video::manifest::Manifest;
use eavs_video::pipeline::DecodePipeline;
use eavs_video::qoe::QoeReport;
use eavs_video::segment::Segment;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sessions that completed with at least one injected (replayed)
/// decision, process-wide. These counters live outside [`SessionReport`]
/// on purpose: a replayed session's report must stay byte-identical to
/// its fully-simulated twin.
static REPLAYED_SESSIONS: AtomicU64 = AtomicU64::new(0);
/// Governor decisions answered from a recorded timeline, process-wide.
static INJECTED_DECISIONS: AtomicU64 = AtomicU64::new(0);

/// Sessions that completed with at least one injected decision since
/// process start.
pub fn replayed_sessions() -> u64 {
    REPLAYED_SESSIONS.load(Ordering::Relaxed)
}

/// Governor decisions answered from a recorded timeline since process
/// start.
pub fn injected_decisions() -> u64 {
    INJECTED_DECISIONS.load(Ordering::Relaxed)
}

/// Decision-timeline control for differential sweep replay.
///
/// Outcome-preserving and observer-like: attaching either mode never
/// changes the session's report, so — like trace sinks — it is not part
/// of the fingerprint. `Record` publishes the session's decision
/// timeline under a [`SessionBuilder::replay_prefix`] key once the run
/// proves fault-clean; `Inject` answers each decision from a recorded
/// timeline while the trajectory provably matches the recorder's, and
/// falls back to full decisions from the first divergence on.
pub enum ReplayCtl {
    /// Record this session's decision timeline under the given
    /// replay-prefix key.
    Record(u128),
    /// Inject decisions from a previously recorded timeline.
    Inject(Arc<DecisionTimeline>),
}

/// Runtime state of the replay control inside the session world.
enum ReplayState {
    /// No replay attached; every decision runs the full governor.
    Off,
    /// Recording: collect one [`DecisionRecord`] per decision, publish
    /// the timeline at report time if the run stayed fault-clean.
    Record {
        key: u128,
        records: Vec<DecisionRecord>,
    },
    /// Injecting: answer decisions from `timeline[pos..]` while `live`;
    /// the first mismatch (or any fault effect) drops to full decisions
    /// for the rest of the session.
    Inject {
        timeline: Arc<DecisionTimeline>,
        pos: usize,
        live: bool,
        injected: u64,
    },
}

/// Which governor drives the session.
pub enum GovernorChoice {
    /// A workload-oblivious baseline behind the trait-object escape
    /// hatch (out-of-crate governors).
    Baseline(Box<dyn CpufreqGovernor>),
    /// A baseline through the devirtualized decision kernel: static
    /// dispatch plus a cached per-window `DecisionLut`
    /// (decision-identical to [`Baseline`](GovernorChoice::Baseline),
    /// see `eavs-governors/tests/kind_equivalence.rs`).
    Kind {
        /// The closed-enum governor.
        kind: GovernorKind,
        /// Per-session LUT cache, rebuilt when thermal limits move.
        lut: LutCache,
    },
    /// The video-aware EAVS governor.
    Eavs(EavsGovernor),
}

impl GovernorChoice {
    /// A baseline by sysfs name through the devirtualized kernel.
    pub fn kind_by_name(name: &str) -> Option<GovernorChoice> {
        Some(GovernorChoice::Kind {
            kind: GovernorKind::by_name(name)?,
            lut: LutCache::default(),
        })
    }

    fn report_name(&self) -> String {
        match self {
            GovernorChoice::Baseline(g) => g.name().to_owned(),
            GovernorChoice::Kind { kind, .. } => kind.name().to_owned(),
            GovernorChoice::Eavs(g) => format!("eavs/{}", g.predictor_name()),
        }
    }

    fn sampling_interval(&self) -> SimDuration {
        match self {
            GovernorChoice::Baseline(g) => g.sampling_interval(),
            GovernorChoice::Kind { kind, .. } => kind.sampling_interval(),
            GovernorChoice::Eavs(g) => g.config().decision_interval,
        }
    }

    /// Hashes the governor's identity and configuration into `fp`,
    /// branch-tagged so a baseline can never collide with EAVS. Governors
    /// carrying learned state mark the fingerprint opaque. Both baseline
    /// shapes share tag 0: dispatch strategy is not identity.
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        match self {
            GovernorChoice::Baseline(g) => {
                fp.write_u8(0);
                g.fingerprint(fp);
            }
            GovernorChoice::Kind { kind, .. } => {
                fp.write_u8(0);
                kind.fingerprint(fp);
            }
            GovernorChoice::Eavs(g) => {
                fp.write_u8(1);
                g.fingerprint(fp);
            }
        }
    }

    /// Dense tag grouping sessions whose decision code paths coincide —
    /// the batch runner admits lanes kind-major so one governor group's
    /// decisions run over adjacent lanes.
    pub(crate) fn lane_class(&self) -> u8 {
        match self {
            GovernorChoice::Kind { kind, .. } => kind.lane_class(),
            GovernorChoice::Baseline(_) => 64,
            GovernorChoice::Eavs(_) => 65,
        }
    }
}

impl std::fmt::Debug for GovernorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GovernorChoice({})", self.report_name())
    }
}

/// Builder for a [`StreamingSession`].
///
/// ```no_run
/// use eavs_core::session::{GovernorChoice, StreamingSession};
/// use eavs_core::governor::{EavsConfig, EavsGovernor};
/// use eavs_core::predictor::Hybrid;
///
/// let gov = GovernorChoice::Eavs(EavsGovernor::new(
///     Box::new(Hybrid::default()),
///     EavsConfig::default(),
/// ));
/// let report = StreamingSession::builder(gov).seed(7).run();
/// println!("{report}");
/// ```
pub struct SessionBuilder {
    governor: GovernorChoice,
    soc: SocModel,
    content: ContentProfile,
    manifest: Arc<Manifest>,
    network: Arc<BandwidthTrace>,
    radio: RadioModel,
    abr: Box<dyn AbrAlgorithm>,
    seed: u64,
    max_buffer: SimDuration,
    decoded_cap: usize,
    startup_frames: usize,
    resume_frames: usize,
    rtt: SimDuration,
    record_series: bool,
    drive_via_sysfs: bool,
    horizon: Option<SimTime>,
    thermal: Option<(ThermalModel, ThrottleController)>,
    background: Option<BackgroundLoad>,
    cluster_select: ClusterSelect,
    late_policy: LatePolicy,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    power: Option<DevicePowerModel>,
    prior: Option<SessionPrior>,
    trace: Option<SharedSink>,
    profile: bool,
    replay: Option<ReplayCtl>,
}

/// Which cluster of a big.LITTLE SoC hosts the player threads.
///
/// Decode placement on phones of the paper's era was a static affinity
/// decision; F17 compares the two placements per quality rung.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClusterSelect {
    /// The performance (big) cluster.
    #[default]
    Big,
    /// The efficiency (LITTLE) cluster: cheaper per cycle, lower ceiling.
    Little,
    /// Start on the big cluster and migrate automatically: EAVS moves the
    /// player to whichever cluster covers the predicted demand most
    /// cheaply, power-gating the other (EAS-style placement; EAVS only).
    Auto,
}

/// Synthetic background work on a secondary core of the same frequency
/// domain (notifications, sync jobs): each period, a burst sized to keep
/// the core busy for `duty × period` at the frequency in force when the
/// burst starts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BackgroundLoad {
    /// Fraction of each period the burst occupies (at burst-start speed).
    pub duty: f64,
    /// Burst period.
    pub period: SimDuration,
}

impl SessionBuilder {
    fn new(governor: GovernorChoice) -> Self {
        SessionBuilder {
            governor,
            soc: SocModel::Flagship2016,
            content: ContentProfile::Film,
            manifest: Arc::new(Manifest::single(
                6_000,
                1920,
                1080,
                SimDuration::from_secs(60),
                30,
            )),
            network: Arc::new(BandwidthTrace::constant(20e6)),
            radio: RadioModel::wifi(),
            abr: Box::new(FixedAbr::new(0)),
            seed: 1,
            max_buffer: SimDuration::from_secs(30),
            decoded_cap: 4,
            startup_frames: 30,
            resume_frames: 60,
            rtt: SimDuration::from_millis(50),
            record_series: false,
            drive_via_sysfs: false,
            horizon: None,
            thermal: None,
            background: None,
            cluster_select: ClusterSelect::Big,
            late_policy: LatePolicy::Stall,
            faults: None,
            retry: RetryPolicy::default(),
            power: None,
            prior: None,
            trace: None,
            profile: false,
            replay: None,
        }
    }

    /// Attaches a replay control (record or inject a decision timeline).
    /// Outcome-preserving, so — like observers — not fingerprinted.
    pub fn replay(mut self, ctl: ReplayCtl) -> Self {
        self.replay = Some(ctl);
        self
    }

    /// The governor's lane class (see [`GovernorChoice::lane_class`]):
    /// the batch runner groups lanes of equal class so one governor's
    /// decision kernel runs over adjacent lanes.
    pub(crate) fn governor_lane_class(&self) -> u8 {
        self.governor.lane_class()
    }

    /// Attaches a trace sink: every hot-path event (downloads, retries,
    /// decode jobs, vsync outcomes, governor decisions, fault
    /// injections) is recorded against simulated time. Sinks observe —
    /// attaching one never changes any session outcome, which is why
    /// [`SessionBuilder::fingerprint`] deliberately ignores them (see
    /// [`SessionBuilder::has_observer`] for the caching implication).
    pub fn trace(mut self, sink: SharedSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Enables per-phase profiling: the report carries a
    /// [`PhaseProfile`] with simulated-time and handler wall-time
    /// breakdowns for download/decode/display/governor work.
    pub fn profile(mut self, enable: bool) -> Self {
        self.profile = enable;
        self
    }

    /// `true` if an observer (trace sink or profiler) is attached.
    ///
    /// Observers don't perturb outcomes, but their *output* (the trace,
    /// the wall-time profile) is per-run, so observed sessions must not
    /// be served from a memoization cache — the cached report would
    /// carry no side effects for the observer.
    pub fn has_observer(&self) -> bool {
        self.trace.is_some() || self.profile
    }

    /// Injects a fault plan: network blackouts, stalled/corrupt segment
    /// downloads, decode spikes and stalls, ambient temperature steps.
    /// An empty plan is a guaranteed behavioral no-op.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// `true` if a non-empty fault plan is attached.
    pub fn has_faults(&self) -> bool {
        self.faults.as_ref().is_some_and(|p| !p.is_empty())
    }

    /// Attaches a whole-device power model (radio RRC + display +
    /// decoder). Accounting is post-hoc over the finished session's
    /// timeline, so [`DevicePowerModel::none`] — and any other model —
    /// is a guaranteed behavioral no-op: only the report's power
    /// counters change.
    pub fn power(mut self, model: DevicePowerModel) -> Self {
        self.power = Some(model);
        self
    }

    /// `true` if a non-trivial (some component modeled) power model is
    /// attached.
    pub fn has_power(&self) -> bool {
        self.power.as_ref().is_some_and(|m| !m.is_none())
    }

    /// Seeds the EAVS predictor with a fleet-learned population prior:
    /// the governor's predictor is wrapped in a
    /// [`FleetPrior`](crate::predictor::FleetPrior) at session start. An
    /// empty prior is a guaranteed behavioral no-op (≡ no prior at all),
    /// and baselines ignore priors entirely.
    pub fn prior(mut self, prior: SessionPrior) -> Self {
        self.prior = Some(prior);
        self
    }

    /// `true` if a non-empty workload prior is attached.
    pub fn has_prior(&self) -> bool {
        self.prior.as_ref().is_some_and(|p| !p.is_empty())
    }

    /// Sets the download retry policy (timeout, retry cap, exponential
    /// backoff). The default has no timeout, so clean sessions schedule
    /// no watchdog events.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Selects what happens to frames whose display slot passes before
    /// they are decoded (stall, the conservative default, or drop).
    pub fn late_policy(mut self, policy: LatePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    /// Places the player on the big or LITTLE cluster.
    pub fn cluster(mut self, select: ClusterSelect) -> Self {
        self.cluster_select = select;
        self
    }

    /// Enables the thermal model and throttle controller: die temperature
    /// follows dissipated power and caps the policy's maximum OPP.
    pub fn thermal(mut self, model: ThermalModel, throttle: ThrottleController) -> Self {
        self.thermal = Some((model, throttle));
        self
    }

    /// Adds periodic background work on core 1 of the frequency domain.
    ///
    /// # Panics
    ///
    /// Panics if the duty is outside `(0, 1)` or the period is zero.
    pub fn background_load(mut self, duty: f64, period: SimDuration) -> Self {
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0,1)");
        assert!(!period.is_zero(), "zero background period");
        self.background = Some(BackgroundLoad { duty, period });
        self
    }

    /// Selects the SoC preset.
    pub fn soc(mut self, soc: SocModel) -> Self {
        self.soc = soc;
        self
    }

    /// Selects the content profile.
    pub fn content(mut self, content: ContentProfile) -> Self {
        self.content = content;
        self
    }

    /// Replaces the manifest (ladder, duration, fps). Accepts an owned
    /// `Manifest` or a shared `Arc<Manifest>`; sweeps pass the `Arc` so every
    /// job references one allocation.
    pub fn manifest(mut self, manifest: impl Into<Arc<Manifest>>) -> Self {
        self.manifest = manifest.into();
        self
    }

    /// Replaces the bandwidth trace.
    pub fn network(mut self, network: impl Into<Arc<BandwidthTrace>>) -> Self {
        self.network = network.into();
        self
    }

    /// Selects the radio power model.
    pub fn radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the ABR algorithm.
    pub fn abr(mut self, abr: Box<dyn AbrAlgorithm>) -> Self {
        self.abr = abr;
        self
    }

    /// Sets the workload seed (content + any stochastic models).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the player's maximum buffered media.
    pub fn max_buffer(mut self, max_buffer: SimDuration) -> Self {
        self.max_buffer = max_buffer;
        self
    }

    /// Sets the decoded-frame queue capacity (output surfaces).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn decoded_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "decoded queue needs capacity");
        self.decoded_cap = cap;
        self
    }

    /// Sets the startup threshold in frames.
    pub fn startup_frames(mut self, frames: usize) -> Self {
        self.startup_frames = frames.max(1);
        self
    }

    /// Sets the rebuffer-resume threshold in frames.
    pub fn resume_frames(mut self, frames: usize) -> Self {
        self.resume_frames = frames.max(1);
        self
    }

    /// Sets the request RTT.
    pub fn rtt(mut self, rtt: SimDuration) -> Self {
        self.rtt = rtt;
        self
    }

    /// Records frequency and buffer timelines into the report.
    pub fn record_series(mut self, record: bool) -> Self {
        self.record_series = record;
        self
    }

    /// Drives EAVS frequency changes through the simulated cpufreq sysfs
    /// (`userspace` governor + `scaling_setspeed`) instead of the direct
    /// cluster API — the deployment path on a rooted device.
    pub fn drive_via_sysfs(mut self, via_sysfs: bool) -> Self {
        self.drive_via_sysfs = via_sysfs;
        self
    }

    /// Overrides the safety horizon (default: 6× content length + 60 s).
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// A deterministic 128-bit digest of everything that influences the
    /// session's outcome: governor, platform, content profile, manifest,
    /// bandwidth trace, radio model, ABR, seed and every knob. Sessions
    /// are single-threaded and deterministic, so two builders with equal
    /// fingerprints produce identical reports — the key `eavs-bench`'s
    /// session cache memoizes on. Returns `None` when any component
    /// carries state the fingerprint cannot capture (e.g. a pre-warmed
    /// predictor or governor), making the session uncacheable.
    ///
    /// Observers (trace sinks, the profiler) are intentionally *not*
    /// hashed: they never influence outcomes, so a traced and an
    /// untraced builder share a fingerprint. Callers that memoize must
    /// additionally check [`SessionBuilder::has_observer`] — cache hits
    /// would silently skip the observer's side effects.
    pub fn fingerprint(&self) -> Option<Fingerprint> {
        let mut fp = Fingerprinter::new("eavs-session/v1");
        self.governor.fingerprint(&mut fp);
        fp.write_str(self.soc.name());
        fp.write_str(self.content.name());
        // The manifest and trace are hashed by content, not identity:
        // distinct allocations of the same ladder must collide.
        self.manifest.fingerprint(&mut fp);
        self.network.fingerprint(&mut fp);
        fp.write_f64(self.radio.active_power_w);
        fp.write_f64(self.radio.tail1_power_w);
        fp.write_u64(self.radio.tail1.as_nanos());
        fp.write_f64(self.radio.tail2_power_w);
        fp.write_u64(self.radio.tail2.as_nanos());
        fp.write_f64(self.radio.idle_power_w);
        fp.write_f64(self.radio.promotion_energy_j);
        fp.write_u64(self.radio.promotion_latency.as_nanos());
        self.abr.fingerprint(&mut fp);
        fp.write_u64(self.seed);
        fp.write_u64(self.max_buffer.as_nanos());
        fp.write_usize(self.decoded_cap);
        fp.write_usize(self.startup_frames);
        fp.write_usize(self.resume_frames);
        fp.write_u64(self.rtt.as_nanos());
        fp.write_bool(self.record_series);
        fp.write_bool(self.drive_via_sysfs);
        fp.write_opt_u64(self.horizon.map(|h| h.as_nanos()));
        match &self.thermal {
            None => fp.write_u8(0),
            Some((model, throttle)) => {
                fp.write_u8(1);
                model.fingerprint(&mut fp);
                fp.write_f64(throttle.throttle_start_c);
                fp.write_f64(throttle.throttle_full_c);
            }
        }
        match &self.background {
            None => fp.write_u8(0),
            Some(bg) => {
                fp.write_u8(1);
                fp.write_f64(bg.duty);
                fp.write_u64(bg.period.as_nanos());
            }
        }
        fp.write_u8(match self.cluster_select {
            ClusterSelect::Big => 0,
            ClusterSelect::Little => 1,
            ClusterSelect::Auto => 2,
        });
        fp.write_u8(match self.late_policy {
            LatePolicy::Stall => 0,
            LatePolicy::Drop => 1,
        });
        // An empty plan and no plan are the same session (the no-op
        // guarantee), so they share a tag; any real fault perturbs the
        // digest, including randomized plans (fully described by their
        // seed + probabilities).
        match &self.faults {
            Some(plan) if !plan.is_empty() => {
                fp.write_u8(1);
                plan.fingerprint(&mut fp);
            }
            _ => fp.write_u8(0),
        }
        self.retry.fingerprint(&mut fp);
        // The none() power model and no model at all are the same
        // session (the zero-power no-op guarantee), so they share a tag;
        // any modeled component perturbs the digest.
        match &self.power {
            Some(model) if !model.is_none() => {
                fp.write_u8(1);
                model.fingerprint(&mut fp);
            }
            _ => fp.write_u8(0),
        }
        // An empty prior and no prior are the same session (the no-op
        // guarantee), so they share a tag; any population evidence
        // perturbs the digest by its exact f64 content.
        match &self.prior {
            Some(prior) if !prior.is_empty() => {
                fp.write_u8(1);
                prior.fingerprint(&mut fp);
            }
            _ => fp.write_u8(0),
        }
        fp.finish()
    }

    /// The differential-replay prefix key: a digest of everything that
    /// shapes governor decision *instants* and demand *values*, but not
    /// of the knobs replay handles live (margin, hysteresis, fill race,
    /// energy floor, panic recovery) nor of fault plans and retry
    /// policies — those perturb a session only through observable
    /// divergence that injection detects online. Two builders with equal
    /// prefixes are the "one knob changed" pairs of a sweep: the first
    /// records its decision timeline, the rest inject it and pay full
    /// decision cost only from their divergence point on.
    ///
    /// `None` for baselines (their decisions are cheap and not
    /// replayable), automatic cluster placement (migration compares live
    /// demand that injection skips) and builders with unfingerprintable
    /// state.
    pub fn replay_prefix(&self) -> Option<u128> {
        let GovernorChoice::Eavs(g) = &self.governor else {
            return None;
        };
        if matches!(self.cluster_select, ClusterSelect::Auto) {
            return None;
        }
        let mut fp = Fingerprinter::new("eavs-session-prefix/v1");
        g.fingerprint_replay_prefix(&mut fp);
        fp.write_str(self.soc.name());
        fp.write_str(self.content.name());
        self.manifest.fingerprint(&mut fp);
        self.network.fingerprint(&mut fp);
        fp.write_f64(self.radio.active_power_w);
        fp.write_f64(self.radio.tail1_power_w);
        fp.write_u64(self.radio.tail1.as_nanos());
        fp.write_f64(self.radio.tail2_power_w);
        fp.write_u64(self.radio.tail2.as_nanos());
        fp.write_f64(self.radio.idle_power_w);
        fp.write_f64(self.radio.promotion_energy_j);
        fp.write_u64(self.radio.promotion_latency.as_nanos());
        self.abr.fingerprint(&mut fp);
        fp.write_u64(self.seed);
        fp.write_u64(self.max_buffer.as_nanos());
        fp.write_usize(self.decoded_cap);
        fp.write_usize(self.startup_frames);
        fp.write_usize(self.resume_frames);
        fp.write_u64(self.rtt.as_nanos());
        // `record_series` is deliberately NOT hashed: it only adds
        // observability output and cannot perturb a decision, so a
        // series-recording session (F2/F11/F12) replays the timeline
        // of its series-less twin and vice versa.
        fp.write_bool(self.drive_via_sysfs);
        fp.write_opt_u64(self.horizon.map(|h| h.as_nanos()));
        match &self.thermal {
            None => fp.write_u8(0),
            Some((model, throttle)) => {
                fp.write_u8(1);
                model.fingerprint(&mut fp);
                fp.write_f64(throttle.throttle_start_c);
                fp.write_f64(throttle.throttle_full_c);
            }
        }
        match &self.background {
            None => fp.write_u8(0),
            Some(bg) => {
                fp.write_u8(1);
                fp.write_f64(bg.duty);
                fp.write_u64(bg.period.as_nanos());
            }
        }
        fp.write_u8(match self.cluster_select {
            ClusterSelect::Big => 0,
            ClusterSelect::Little => 1,
            ClusterSelect::Auto => unreachable!("excluded above"),
        });
        fp.write_u8(match self.late_policy {
            LatePolicy::Stall => 0,
            LatePolicy::Drop => 1,
        });
        // The power model is deliberately NOT hashed: accounting is
        // post-hoc over the finished timeline and cannot perturb a
        // decision, so a power-modeled session (F28/F29) replays the
        // timeline of its unmodeled twin and vice versa.
        //
        // The workload prior IS hashed: it changes early predictions and
        // therefore demand values — a warmed session must never inject a
        // cold session's decision timeline.
        match &self.prior {
            Some(prior) if !prior.is_empty() => {
                fp.write_u8(1);
                prior.fingerprint(&mut fp);
            }
            _ => fp.write_u8(0),
        }
        fp.finish().map(|f| f.0)
    }

    /// Runs the session to completion and reports.
    pub fn run(self) -> SessionReport {
        StreamingSession::run_built(self)
    }
}

/// Entry point: build and run streaming sessions.
pub struct StreamingSession;

impl StreamingSession {
    /// Starts building a session around a governor.
    pub fn builder(governor: GovernorChoice) -> SessionBuilder {
        SessionBuilder::new(governor)
    }

    fn run_built(b: SessionBuilder) -> SessionReport {
        let mut scratch = SessionScratch::default();
        let mut state = SessionState::with_scratch(b, &mut scratch);
        while state.step() {}
        state.finish_into(&mut scratch)
    }
}

/// Recycled per-session buffers for the step kernel.
///
/// A shard runner keeps one `SessionScratch` per lane and threads it
/// through [`SessionState::with_scratch`] / [`SessionState::finish_into`]:
/// each session inherits the previous one's backing stores (cleared, not
/// freed), driving steady-state allocations per session toward zero.
/// `Default` yields empty buffers, so the scalar path pays nothing extra.
#[derive(Default)]
pub struct SessionScratch {
    /// Backing store for [`PipelineSnapshot::upcoming`].
    snapshot: Vec<FrameMeta>,
    /// Per-segment ground-truth buffer for oracle preloads.
    truth: Vec<(FrameMeta, Cycles)>,
    /// Per-segment bitrate log (QoE input).
    bitrates: Vec<u32>,
    /// Time-in-state accumulation buffer.
    tis: Vec<SimDuration>,
}

/// A read-only projection of one running session's hot state, cheap
/// enough to refresh after every kernel step. Batch runners mirror these
/// into struct-of-arrays lanes for scheduling decisions without touching
/// the full world.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KernelHot {
    /// Current simulated time.
    pub now: SimTime,
    /// OPP index the cluster is running at.
    pub opp_index: usize,
    /// Frames sitting decoded, ready for display.
    pub decoded_depth: usize,
    /// Frames buffered but not yet decoded.
    pub queue_depth: usize,
    /// Time until the next display deadline (zero unless playing).
    pub slack: SimDuration,
    /// Governor decisions taken so far (0 for baselines).
    pub decisions: u64,
}

/// The pure step kernel: one streaming session, advanced one event at a
/// time.
///
/// [`SessionState::with_scratch`] performs all construction and initial
/// scheduling; [`SessionState::step`] processes exactly one event (the
/// only mutation point); [`SessionState::finish_into`] consumes the
/// state into a [`SessionReport`], returning the scratch buffers for the
/// next session. `run()` on the builder is exactly
/// `with_scratch → step* → finish_into`, so scalar and batched execution
/// share one code path and byte-identical results by construction.
pub struct SessionState {
    sim: Simulation<SessionWorld>,
    horizon: SimTime,
    done: bool,
}

impl SessionState {
    /// Builds the session world, borrowing backing stores from `scratch`.
    pub fn with_scratch(b: SessionBuilder, scratch: &mut SessionScratch) -> SessionState {
        let horizon = b.horizon.unwrap_or_else(|| {
            SimTime::ZERO + b.manifest.total_duration() * 6 + SimDuration::from_secs(60)
        });
        let (cluster, standby) = match b.cluster_select {
            ClusterSelect::Big => (b.soc.build_cluster(), None),
            ClusterSelect::Little => (b.soc.build_little_cluster(), None),
            ClusterSelect::Auto => {
                assert!(
                    matches!(b.governor, GovernorChoice::Eavs(_)),
                    "automatic cluster placement requires the EAVS governor"
                );
                assert!(
                    b.thermal.is_none() && b.background.is_none(),
                    "automatic placement does not compose with thermal or background load"
                );
                let mut little = b.soc.build_little_cluster();
                little.set_gated(SimTime::ZERO, true);
                (b.soc.build_cluster(), Some(little))
            }
        };
        let fs = CpufreqFs::new(&cluster);
        let faults = b
            .faults
            .as_ref()
            .map(FaultPlan::schedule)
            .unwrap_or_default();
        // Blackout windows rewrite the trace; otherwise the shared Arc is
        // used untouched (keeps sweep jobs on one allocation).
        let blackout_cutoff = faults.first_blackout_start();
        let network = match faults.apply_to_trace(&b.network) {
            Some(t) => Arc::new(t),
            None => Arc::clone(&b.network),
        };
        let replay = match b.replay {
            None => ReplayState::Off,
            Some(ReplayCtl::Record(key)) => ReplayState::Record {
                key,
                records: Vec::with_capacity(4096),
            },
            Some(ReplayCtl::Inject(timeline)) => ReplayState::Inject {
                timeline,
                pos: 0,
                live: true,
                injected: 0,
            },
        };
        let ambient_queue: VecDeque<AmbientStep> = if b.thermal.is_some() {
            faults.ambient_steps().iter().copied().collect()
        } else {
            VecDeque::new()
        };
        let generator = VideoGenerator::new(b.manifest.clone(), b.content, b.seed);
        let playback = Playback::new(b.manifest.total_frames(), b.startup_frames, b.resume_frames)
            .with_policy(b.late_policy);
        let max_buffer_frames = (b.max_buffer.as_nanos() / b.manifest.frame_duration().as_nanos())
            .max(b.manifest.frames_per_segment * 2) as usize;
        let num_segments = b.manifest.num_segments as usize;
        let frames_per_segment = b.manifest.frames_per_segment as usize;
        let mut bitrates = std::mem::take(&mut scratch.bitrates);
        bitrates.clear();
        bitrates.reserve(num_segments);
        let mut snapshot_scratch = std::mem::take(&mut scratch.snapshot);
        snapshot_scratch.clear();
        snapshot_scratch.reserve(16);
        let mut truth_scratch = std::mem::take(&mut scratch.truth);
        truth_scratch.clear();
        truth_scratch.reserve(frames_per_segment);
        // Seed the EAVS predictor from the fleet prior before any decision
        // is taken; empty priors are dropped (≡ absent) and baselines have
        // no predictor to seed.
        let mut governor = b.governor;
        if let Some(prior) = b.prior.filter(|p| !p.is_empty()) {
            if let GovernorChoice::Eavs(g) = &mut governor {
                g.seed_prior(prior);
            }
        }
        let world = SessionWorld {
            monitor: LoadMonitor::new(SimTime::ZERO, SimDuration::ZERO),
            monitor_bg: LoadMonitor::new(SimTime::ZERO, SimDuration::ZERO),
            standby,
            migrations: 0,
            last_migration: SimTime::ZERO,
            thermal: b.thermal,
            thermal_last: (SimTime::ZERO, 0.0),
            peak_temp_c: None,
            background: b.background,
            pipeline: DecodePipeline::new(b.decoded_cap),
            downloader: Downloader::new(network, b.rtt),
            faults,
            retry: b.retry,
            attempt: 0,
            retry_segment: None,
            download_event: None,
            timeout_event: None,
            decoder_stall_event: None,
            stall_frame: 0,
            stall_cleared: None,
            ambient_queue,
            download_retries: 0,
            download_timeouts: 0,
            corrupt_downloads: 0,
            segments_abandoned: 0,
            frames_skipped: 0,
            decode_spikes: 0,
            decode_stalls: 0,
            freq_series: b.record_series.then(StepSeries::new),
            buffer_series: b.record_series.then(StepSeries::new),
            cluster,
            fs,
            governor,
            drive_via_sysfs: b.drive_via_sysfs,
            playback,
            abr: b.abr,
            generator,
            manifest: b.manifest,
            soc: b.soc,
            content: b.content,
            radio: b.radio,
            power: b.power.unwrap_or_default(),
            seed: b.seed,
            next_segment: 0,
            pending_segment: None,
            last_rep: None,
            bitrates,
            snapshot_scratch,
            truth_scratch,
            decode_event: None,
            decode_initial: None,
            vsync_event: None,
            next_vsync_at: SimTime::ZERO,
            end_time: None,
            segments_downloaded: 0,
            max_buffer_frames,
            trace: b.trace,
            profile: b.profile.then(PhaseProfile::new),
            replay,
            replay_dead: false,
            ambient_fired: false,
            blackout_cutoff,
            pipeline_epoch: 0,
            steady: SteadyDemand::new(),
            frame_cycles: FrameCycleStats::new(),
        };
        let mut sim = Simulation::new(world);
        if let Some(sink) = sim.world().trace.clone() {
            // Engine-level tap: record every raw dispatch ahead of its
            // handler, so timelines show the scheduler's view too.
            sim.scheduler().set_tap(Box::new(move |at, ev: &Ev| {
                sink.lock()
                    .expect("trace sink poisoned")
                    .record(at, &TraceEvent::Dispatch { kind: ev.kind() });
            }));
        }

        // Initial governor target and first download.
        {
            let sched_now = SimTime::ZERO;
            let world = sim.world_mut();
            // Derive the platform's critical-speed floor for EAVS from the
            // SoC's power model and deepest idle state (done once, as a
            // real deployment would from the device power table).
            let floor = crate::selector::critical_speed_index(
                world.cluster.opps(),
                world.cluster.power_model(),
                world
                    .cluster
                    .cstates()
                    .iter()
                    .last()
                    .expect("at least one idle state")
                    .power_w,
            );
            if let GovernorChoice::Eavs(g) = &mut world.governor {
                g.set_energy_floor(floor);
            }
            let initial = match &world.governor {
                GovernorChoice::Baseline(g) => {
                    g.initial_index(world.cluster.opps(), world.cluster.limits())
                }
                GovernorChoice::Kind { kind, .. } => {
                    kind.initial_index(world.cluster.opps(), world.cluster.limits())
                }
                GovernorChoice::Eavs(_) => world.cluster.limits().max_index,
            };
            if world.drive_via_sysfs {
                world
                    .fs
                    .write(
                        &mut world.cluster,
                        "scaling_governor",
                        "userspace",
                        sched_now,
                    )
                    .expect("userspace governor available");
                let khz = world.cluster.opps().freq(initial).khz().to_string();
                world
                    .fs
                    .write(&mut world.cluster, "scaling_setspeed", &khz, sched_now)
                    .expect("initial setspeed");
            } else {
                world.cluster.set_target(sched_now, initial);
            }
            if let Some(s) = &mut world.freq_series {
                s.set(sched_now, world.cluster.opps().freq(initial).mhz() as f64);
            }
        }
        let interval = sim.world().governor.sampling_interval();
        sim.scheduler().schedule_at(SimTime::ZERO, Ev::Start);
        sim.scheduler()
            .schedule_at(SimTime::ZERO + interval, Ev::Sample);
        if sim.world().background.is_some() {
            sim.scheduler().schedule_at(SimTime::ZERO, Ev::Background);
        }
        for i in 0..sim.world().ambient_queue.len() {
            let at = sim.world().ambient_queue[i].at;
            sim.scheduler().schedule_at(at, Ev::AmbientStep);
        }
        SessionState {
            sim,
            horizon,
            done: false,
        }
    }

    /// Processes exactly one event. Returns `false` once the session is
    /// over (playback ended, queue drained, or horizon reached); further
    /// calls stay `false`.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        match self.sim.step_until(self.horizon) {
            StepOutcome::Progressed => true,
            StepOutcome::QueueEmpty | StepOutcome::HorizonReached | StepOutcome::Stopped => {
                self.done = true;
                false
            }
        }
    }

    /// Whether the session has finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Snapshot of the hot state for batch scheduling.
    pub fn hot(&self) -> KernelHot {
        let w = self.sim.world();
        let now = self.sim.now();
        KernelHot {
            now,
            opp_index: w.cluster.current_index(),
            decoded_depth: w.pipeline.decoded_len(),
            queue_depth: w.pipeline.undecoded_len(),
            slack: if w.playback.phase() == PlaybackPhase::Playing {
                w.next_vsync_at.saturating_duration_since(now)
            } else {
                SimDuration::ZERO
            },
            decisions: match &w.governor {
                GovernorChoice::Eavs(g) => g.decisions(),
                _ => 0,
            },
        }
    }

    /// Consumes the finished (or horizon-cut) session into its report,
    /// returning the recycled buffers through `scratch`.
    pub fn finish_into(mut self, scratch: &mut SessionScratch) -> SessionReport {
        let end = self.sim.world().end_time.unwrap_or(self.sim.now());
        let events = self.sim.scheduler().events_processed();
        let mut world = self.sim.into_world();
        world.playback.finalize(end);
        world.build_report(end, events, scratch)
    }
}

/// Session events.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Ev {
    /// Kick off the first download.
    Start,
    /// The in-flight segment finished downloading.
    DownloadDone,
    /// A display refresh tick.
    Vsync,
    /// The in-flight decode completed.
    DecodeDone,
    /// Governor sampling tick.
    Sample,
    /// Background-load burst tick.
    Background,
    /// Watchdog: the in-flight download exceeded the retry timeout.
    DownloadTimeout,
    /// Backoff elapsed; re-attempt the failed segment.
    RetryDownload,
    /// A transient decoder stall cleared.
    DecodeResume,
    /// A scripted ambient-temperature step (fault injection).
    AmbientStep,
}

impl Ev {
    /// Stable name for the engine-dispatch trace tap.
    fn kind(&self) -> &'static str {
        match self {
            Ev::Start => "start",
            Ev::DownloadDone => "download_done",
            Ev::Vsync => "vsync",
            Ev::DecodeDone => "decode_done",
            Ev::Sample => "sample",
            Ev::Background => "background",
            Ev::DownloadTimeout => "download_timeout",
            Ev::RetryDownload => "retry_download",
            Ev::DecodeResume => "decode_resume",
            Ev::AmbientStep => "ambient_step",
        }
    }

    /// Which pipeline phase this engine event's handler belongs to (for
    /// the wall-time profiler).
    fn phase(&self) -> Phase {
        match self {
            Ev::Start | Ev::DownloadDone | Ev::DownloadTimeout | Ev::RetryDownload => {
                Phase::Download
            }
            Ev::DecodeDone | Ev::DecodeResume => Phase::Decode,
            Ev::Vsync => Phase::Display,
            Ev::Sample => Phase::Governor,
            Ev::Background | Ev::AmbientStep => Phase::Other,
        }
    }
}

struct SessionWorld {
    cluster: Cluster,
    fs: CpufreqFs,
    governor: GovernorChoice,
    drive_via_sysfs: bool,
    pipeline: DecodePipeline,
    playback: Playback,
    downloader: Downloader,
    abr: Box<dyn AbrAlgorithm>,
    generator: VideoGenerator,
    manifest: Arc<Manifest>,
    soc: SocModel,
    content: ContentProfile,
    radio: RadioModel,
    /// Whole-device power co-model; the zero-power no-op by default.
    power: DevicePowerModel,
    /// The builder's seed, kept for coordinate-keyed power draws
    /// (display frame similarity) in post-hoc accounting.
    seed: u64,
    monitor: LoadMonitor,
    monitor_bg: LoadMonitor,
    standby: Option<Cluster>,
    migrations: u64,
    last_migration: SimTime,
    thermal: Option<(ThermalModel, ThrottleController)>,
    thermal_last: (SimTime, f64),
    peak_temp_c: Option<f64>,
    background: Option<BackgroundLoad>,
    next_segment: u64,
    pending_segment: Option<Arc<Segment>>,
    last_rep: Option<usize>,
    bitrates: Vec<u32>,
    /// Compiled fault plan; empty on clean sessions (every lookup misses).
    faults: FaultSchedule,
    retry: RetryPolicy,
    /// 0-based attempt number of the in-flight (or pending-retry) download.
    attempt: u32,
    /// A failed segment waiting out its backoff before re-download.
    retry_segment: Option<Arc<Segment>>,
    download_event: Option<EventId>,
    timeout_event: Option<EventId>,
    decoder_stall_event: Option<EventId>,
    /// Frame index the pending decoder stall applies to.
    stall_frame: u64,
    /// Frame whose decoder stall already elapsed (don't re-trigger).
    stall_cleared: Option<u64>,
    ambient_queue: VecDeque<AmbientStep>,
    download_retries: u64,
    download_timeouts: u64,
    corrupt_downloads: u64,
    segments_abandoned: u64,
    frames_skipped: u64,
    decode_spikes: u64,
    decode_stalls: u64,
    /// Recycled backing store for [`PipelineSnapshot::upcoming`]; handed
    /// to the snapshot and reclaimed after the governor decision so the
    /// per-event hot path allocates nothing in steady state.
    snapshot_scratch: Vec<FrameMeta>,
    /// Recycled per-segment ground-truth buffer for oracle preloads.
    truth_scratch: Vec<(FrameMeta, Cycles)>,
    decode_event: Option<EventId>,
    decode_initial: Option<Cycles>,
    vsync_event: Option<EventId>,
    next_vsync_at: SimTime,
    end_time: Option<SimTime>,
    segments_downloaded: u64,
    max_buffer_frames: usize,
    freq_series: Option<StepSeries>,
    buffer_series: Option<StepSeries>,
    /// Attached trace sink, if any. `None` keeps every emit site down to
    /// a single predictable branch (events are built inside closures, so
    /// nothing is even constructed).
    trace: Option<SharedSink>,
    /// Wall/sim per-phase accounting, when profiling was requested.
    profile: Option<PhaseProfile>,
    /// Differential-replay state (record, inject, or off).
    replay: ReplayState,
    /// A download stalled or straddled a blackout rewrite: the timeline
    /// is (or is about to become) divergent in a way `chosen`-matching
    /// cannot see, so replay goes (and stays) dead.
    replay_dead: bool,
    /// An ambient-temperature fault step fired (perturbs throttling).
    ambient_fired: bool,
    /// Start of the earliest blackout window when the bandwidth trace
    /// was rewritten; transfers scheduled to complete at or after this
    /// instant kill replay (see [`SessionWorld::begin_transfer`]).
    blackout_cutoff: Option<SimTime>,
    /// Monotonic counter of pipeline-mutating events: bumped for every
    /// event except the pure sample tick, because the scheduler is the
    /// only driver of state change — between events nothing but the
    /// clock (and the in-flight decode's progress) moves.
    pipeline_epoch: u64,
    /// Demand items cached by the last full `DEMAND` decision, reusable
    /// on steady timer ticks while [`Self::pipeline_epoch`] is unchanged.
    steady: SteadyDemand,
    /// Per-frame-type actual decode-cost summary, recorded on every
    /// decode completion regardless of governor (the raw material fleet
    /// campaigns fold into workload priors).
    frame_cycles: FrameCycleStats,
}

/// The steady-tick demand cache (see [`SessionWorld::govern`]): between
/// pipeline events a decision's demand list differs from the previous
/// one only through the clock and the in-flight decode's progress, both
/// of which are recomputed live — the predictor walk and the snapshot
/// build are skipped entirely.
struct SteadyDemand {
    /// Pipeline epoch the items were derived under; `u64::MAX` = never.
    epoch: u64,
    /// Predicted cost and display deadline of the in-flight decode
    /// (item 0). Its *remaining* cycles are recomputed each tick from
    /// the core's live counter, exactly as a snapshot would see them.
    inflight: Option<(Cycles, SimTime)>,
    /// Demand items of the waiting frames — fixed between events.
    tail: Vec<DemandItem>,
    /// Frame metadata behind each `tail` item, kept so a decode
    /// completion can re-predict just the observed type's items.
    tail_meta: Vec<FrameMeta>,
    /// Per-tick assembly buffer: `[in-flight?] ++ tail`.
    scratch: Vec<DemandItem>,
}

impl SteadyDemand {
    fn new() -> Self {
        SteadyDemand {
            epoch: u64::MAX,
            inflight: None,
            tail: Vec::new(),
            tail_meta: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl World for SessionWorld {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
        let now = sched.now();
        self.cluster.advance(now);
        if self.profile.is_some() {
            // Wall-clock only ever feeds the profiler, never the model:
            // the dispatch below is identical either way.
            let start = std::time::Instant::now();
            self.dispatch(sched, now, event);
            let wall_ns = start.elapsed().as_nanos() as u64;
            if let Some(p) = &mut self.profile {
                p.note(event.phase(), wall_ns);
            }
        } else {
            self.dispatch(sched, now, event);
        }
    }
}

impl SessionWorld {
    fn dispatch(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, event: Ev) {
        // Every event except the pure sample tick may mutate the pipeline
        // (queue depths, vsync schedule, phase, predictor state); the tick
        // itself only reads. Over-counting is harmless — an epoch bump
        // merely sends the next decision down the full path.
        if !matches!(event, Ev::Sample) {
            self.pipeline_epoch += 1;
        }
        match event {
            Ev::Start => {
                self.maybe_request_download(sched, now);
            }
            Ev::DownloadDone => self.on_download_done(sched, now),
            Ev::DecodeDone => self.on_decode_done(sched, now),
            Ev::Vsync => self.on_vsync(sched, now),
            Ev::Sample => self.on_sample(sched, now),
            Ev::Background => self.on_background(sched, now),
            Ev::DownloadTimeout => self.on_download_timeout(sched, now),
            Ev::RetryDownload => self.on_retry_download(sched, now),
            Ev::DecodeResume => self.on_decode_resume(sched, now),
            Ev::AmbientStep => self.on_ambient_step(sched, now),
        }
    }

    /// Records a trace event if a sink is attached. The event is built
    /// inside the closure, so when nothing listens the cost is one
    /// branch and no construction.
    #[inline]
    fn emit(&self, now: SimTime, ev: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.trace {
            let event = ev();
            sink.lock()
                .expect("trace sink poisoned")
                .record(now, &event);
        }
    }
    fn buffered_media(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.manifest.frame_duration().as_nanos() * self.pipeline.frames_buffered() as u64,
        )
    }

    fn record_buffer(&mut self, now: SimTime) {
        let level = self.buffered_media().as_secs_f64();
        if let Some(s) = &mut self.buffer_series {
            s.set(now, level);
        }
    }

    fn maybe_request_download(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if self.downloader.is_busy()
            || self.retry_segment.is_some()
            || self.next_segment >= self.manifest.num_segments
        {
            return;
        }
        if self.pipeline.frames_buffered() as u64 + self.manifest.frames_per_segment
            > self.max_buffer_frames as u64
        {
            return; // buffer full; retried on the next vsync drain
        }
        let ctx = AbrContext {
            manifest: &self.manifest,
            buffer_level: SimDuration::from_nanos(
                self.manifest.frame_duration().as_nanos() * self.pipeline.frames_buffered() as u64,
            ),
            throughput: self.downloader.samples(),
            next_segment: self.next_segment,
            previous_choice: self.last_rep,
        };
        let rep = self.abr.choose(&ctx);
        // Shared across sessions: every governor streaming this title
        // re-decodes the same bytes, so generate each segment once.
        let segment = self.generator.shared_segment(self.next_segment, rep);
        self.next_segment += 1;
        self.begin_transfer(sched, now, segment, 0);
    }

    /// Starts (or re-starts) a segment transfer, honoring stall faults
    /// and arming the retry watchdog when a timeout is configured.
    fn begin_transfer(
        &mut self,
        sched: &mut Scheduler<Ev>,
        now: SimTime,
        segment: Arc<Segment>,
        attempt: u32,
    ) {
        self.attempt = attempt;
        if self.faults.is_stalled(segment.index, attempt) {
            // The server wedged: the radio burns energy but no completion
            // instant exists. Only the watchdog can recover this.
            self.replay_dead = true;
            self.downloader.start_stalled(now, segment.size_bytes());
            self.emit(now, || TraceEvent::DownloadStalled {
                segment: segment.index,
                attempt,
            });
        } else {
            let done = self
                .downloader
                .start(now, segment.size_bytes())
                .expect("bandwidth trace stalls forever; transfer cannot complete");
            if self.blackout_cutoff.is_some_and(|cutoff| done >= cutoff) {
                // The transfer overlaps a blackout rewrite: its completion
                // instant differs from the recorder's, and every decision
                // from here depends on it. Replay dies at the *scheduling*
                // instant — decision instants up to this point were
                // provably identical to the recorder's, so injections so
                // far remain valid.
                self.replay_dead = true;
            }
            self.download_event = Some(sched.schedule_at(done, Ev::DownloadDone));
            self.emit(now, || TraceEvent::DownloadStart {
                segment: segment.index,
                attempt,
                bytes: segment.size_bytes(),
            });
        }
        self.pending_segment = Some(segment);
        if let Some(timeout) = self.retry.timeout {
            self.timeout_event = Some(sched.schedule_at(now + timeout, Ev::DownloadTimeout));
        }
    }

    /// Queues a failed segment for re-download after exponential backoff,
    /// or abandons it once the retry budget is exhausted.
    fn schedule_retry(
        &mut self,
        sched: &mut Scheduler<Ev>,
        now: SimTime,
        segment: Arc<Segment>,
        next_attempt: u32,
    ) {
        if next_attempt > self.retry.max_retries {
            self.segments_abandoned += 1;
            self.emit(now, || TraceEvent::DownloadAbandoned {
                segment: segment.index,
            });
            self.maybe_request_download(sched, now);
            return;
        }
        self.attempt = next_attempt;
        self.emit(now, || TraceEvent::DownloadRetry {
            segment: segment.index,
            attempt: next_attempt,
        });
        self.retry_segment = Some(segment);
        let wait = self.retry.backoff(next_attempt - 1);
        sched.schedule_at(now + wait, Ev::RetryDownload);
    }

    fn on_download_timeout(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        self.timeout_event = None;
        // A completion at the exact same instant may have already been
        // handled (it cancels the watchdog, so only an uncanceled event
        // with a transfer still pending acts).
        let Some(segment) = self.pending_segment.take() else {
            return;
        };
        if let Some(ev) = self.download_event.take() {
            sched.cancel(ev);
        }
        self.downloader.abort(now);
        self.download_timeouts += 1;
        self.emit(now, || TraceEvent::DownloadTimeout {
            segment: segment.index,
            attempt: self.attempt,
        });
        self.schedule_retry(sched, now, segment, self.attempt + 1);
        self.govern(sched, now);
    }

    fn on_retry_download(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        let Some(segment) = self.retry_segment.take() else {
            return;
        };
        self.download_retries += 1;
        let attempt = self.attempt;
        self.begin_transfer(sched, now, segment, attempt);
        self.govern(sched, now);
    }

    fn on_download_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        self.download_event = None;
        if let Some(ev) = self.timeout_event.take() {
            sched.cancel(ev);
        }
        self.downloader.complete(now);
        let segment = self
            .pending_segment
            .take()
            .expect("download completion without a pending segment");
        if self.faults.is_corrupt(segment.index, self.attempt) {
            // The bytes arrived but fail integrity checks: the transfer
            // cost real radio energy, yet the segment must be re-fetched.
            self.corrupt_downloads += 1;
            self.emit(now, || TraceEvent::DownloadCorrupt {
                segment: segment.index,
                attempt: self.attempt,
            });
            self.schedule_retry(sched, now, segment, self.attempt + 1);
            self.govern(sched, now);
            return;
        }
        self.emit(now, || TraceEvent::DownloadDone {
            segment: segment.index,
            bytes: segment.size_bytes(),
        });
        let rep = self.manifest.representation(segment.representation_id);
        self.bitrates.push(rep.bitrate_kbps);
        self.last_rep = Some(segment.representation_id);
        self.segments_downloaded += 1;
        if let GovernorChoice::Eavs(g) = &mut self.governor {
            // Real predictors ignore this; the oracle bound stores it.
            self.truth_scratch.clear();
            self.truth_scratch.extend(
                segment
                    .frames()
                    .iter()
                    .map(|f| (FrameMeta::from(f), f.decode_cycles)),
            );
            g.preload(&self.truth_scratch);
        }
        self.pipeline.push_frames(segment.frames().iter().copied());
        self.record_buffer(now);
        self.try_start_decode(sched, now);
        self.maybe_begin_playback(sched, now);
        self.maybe_request_download(sched, now);
        self.govern(sched, now);
    }

    fn try_start_decode(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if self.playback.policy() == LatePolicy::Drop {
            // Never spend cycles decoding frames that can no longer make
            // their slot: skip stale Bs, resync at the next I if the GOP
            // is lost.
            self.frames_skipped += self.pipeline.catch_up(self.playback.next_display()) as u64;
        }
        if !self.pipeline.can_start_decode() || self.cluster.is_core_busy(0) {
            return;
        }
        if let Some(next) = self.pipeline.peek_next_undecoded() {
            let idx = next.index;
            if self.stall_cleared != Some(idx) {
                if let Some(pause) = self.faults.decoder_stall(idx) {
                    // Transient decoder wedge: the frame cannot enter the
                    // decoder until the pause elapses.
                    if self.decoder_stall_event.is_none() {
                        self.decode_stalls += 1;
                        self.stall_frame = idx;
                        self.decoder_stall_event =
                            Some(sched.schedule_at(now + pause, Ev::DecodeResume));
                        self.emit(now, || TraceEvent::DecodeStall {
                            frame: idx,
                            resume_in_us: pause.as_micros(),
                        });
                    }
                    return;
                }
            }
        }
        let frame = self.pipeline.start_decode();
        let cycles = match self.faults.decode_spike(frame.index) {
            Some(factor) => {
                self.decode_spikes += 1;
                self.emit(now, || TraceEvent::DecodeSpike {
                    frame: frame.index,
                    factor_milli: (factor * 1000.0).round() as u64,
                });
                frame.decode_cycles.scale(factor)
            }
            None => frame.decode_cycles,
        };
        self.cluster.start_job(now, 0, cycles);
        self.emit(now, || TraceEvent::DecodeStart {
            frame: frame.index,
            freq_khz: u64::from(self.cluster.current_freq().khz()),
        });
        self.decode_initial = Some(cycles);
        let done = self
            .cluster
            .completion_time(now, 0)
            .expect("job just started");
        self.decode_event = Some(sched.schedule_at(done, Ev::DecodeDone));
    }

    fn on_decode_resume(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        self.decoder_stall_event = None;
        self.stall_cleared = Some(self.stall_frame);
        self.try_start_decode(sched, now);
        self.maybe_begin_playback(sched, now);
        self.govern(sched, now);
    }

    /// Applies a scripted ambient-temperature step: integrate the thermal
    /// model up to now under the old ambient, then switch it.
    fn on_ambient_step(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        self.update_thermal(sched, now);
        if let Some(step) = self.ambient_queue.pop_front() {
            self.ambient_fired = true;
            self.emit(now, || TraceEvent::AmbientStep {
                milli_c: (step.ambient_c * 1000.0).round() as i64,
            });
            if let Some((model, _)) = &mut self.thermal {
                model.set_ambient(step.ambient_c);
            }
        }
    }

    fn on_decode_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        debug_assert!(
            !self.cluster.is_core_busy(0),
            "decode completion event fired while core still busy"
        );
        self.decode_event = None;
        // The cycles actually charged to the core (spiked under faults);
        // feeding the governor the *observed* cost, not the container's
        // nominal one, is what lets panic recovery detect breaches.
        let actual = self
            .decode_initial
            .take()
            .expect("decode completion without initial cycles");
        let frame = self.pipeline.finish_decode();
        self.emit(now, || TraceEvent::DecodeDone { frame: frame.index });
        let observed = FrameMeta::from(&frame);
        self.frame_cycles.observe(observed.frame_type, actual);
        if let GovernorChoice::Eavs(g) = &mut self.governor {
            g.observe_decode(observed, actual);
        }
        self.maybe_migrate(sched, now);
        let cache_live = self.steady.epoch.wrapping_add(1) == self.pipeline_epoch;
        let skipped_before = self.frames_skipped;
        self.try_start_decode(sched, now);
        self.maybe_begin_playback(sched, now);
        if cache_live && self.frames_skipped == skipped_before {
            self.revalidate_steady_after_decode(observed);
        }
        self.govern(sched, now);
    }

    fn maybe_begin_playback(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if self.pipeline.decoded_len() == 0 {
            return;
        }
        if !matches!(
            self.playback.phase(),
            PlaybackPhase::Startup | PlaybackPhase::Rebuffering
        ) {
            return;
        }
        let downloads_done = self.next_segment >= self.manifest.num_segments
            && !self.downloader.is_busy()
            && self.retry_segment.is_none();
        if self
            .playback
            .maybe_start(now, self.pipeline.frames_buffered(), downloads_done)
        {
            self.emit(now, || TraceEvent::PlaybackStart);
            self.schedule_vsync(sched, now);
        }
    }

    fn schedule_vsync(&mut self, sched: &mut Scheduler<Ev>, at: SimTime) {
        self.next_vsync_at = at;
        self.vsync_event = Some(sched.schedule_at(at, Ev::Vsync));
    }

    fn on_vsync(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        self.vsync_event = None;
        if self.playback.phase() != PlaybackPhase::Playing {
            return;
        }
        match self.playback.on_vsync(now, &mut self.pipeline) {
            VsyncOutcome::Displayed(frame) => {
                self.emit(now, || TraceEvent::VsyncDisplayed { frame: frame.index });
                self.record_buffer(now);
                let cache_live = self.steady.epoch.wrapping_add(1) == self.pipeline_epoch;
                let skipped_before = self.frames_skipped;
                let inflight_before = self.decode_event.is_some();
                self.try_start_decode(sched, now);
                self.maybe_request_download(sched, now);
                self.schedule_vsync(sched, now + self.manifest.frame_duration());
                if cache_live && self.frames_skipped == skipped_before {
                    self.revalidate_steady_after_display(inflight_before);
                }
                self.govern(sched, now);
            }
            VsyncOutcome::DecoderLate => {
                self.emit(now, || TraceEvent::VsyncLate {
                    frame: self.playback.next_display(),
                });
                self.schedule_vsync(sched, now + self.manifest.frame_duration());
                self.govern(sched, now);
            }
            VsyncOutcome::Dropped => {
                self.emit(now, || TraceEvent::VsyncDropped {
                    frame: self.playback.next_display(),
                });
                if self.playback.phase() == PlaybackPhase::Ended {
                    self.emit(now, || TraceEvent::PlaybackEnd {
                        frame: self.playback.next_display(),
                    });
                    self.end_time = Some(now);
                    sched.stop();
                    return;
                }
                self.record_buffer(now);
                self.try_start_decode(sched, now);
                self.maybe_request_download(sched, now);
                self.schedule_vsync(sched, now + self.manifest.frame_duration());
                self.govern(sched, now);
            }
            VsyncOutcome::Starved => {
                self.emit(now, || TraceEvent::Rebuffer {
                    frame: self.playback.next_display(),
                });
                if let GovernorChoice::Eavs(g) = &mut self.governor {
                    // Rebuffer: with panic recovery enabled, the next
                    // decision re-races to clear the backlog (no-op for
                    // the stock configuration).
                    g.notify_rebuffer();
                }
                let downloads_done = self.next_segment >= self.manifest.num_segments
                    && !self.downloader.is_busy()
                    && self.retry_segment.is_none();
                if downloads_done && self.pipeline.is_drained() {
                    // Nothing will ever arrive again (possible under the
                    // drop policy when the stream's tail was skipped):
                    // finish instead of waiting for the horizon.
                    self.end_time = Some(now);
                    sched.stop();
                    return;
                }
                self.maybe_request_download(sched, now);
                self.govern(sched, now);
            }
            VsyncOutcome::Ended(frame) => {
                self.emit(now, || TraceEvent::VsyncDisplayed { frame: frame.index });
                self.emit(now, || TraceEvent::PlaybackEnd { frame: frame.index });
                self.end_time = Some(now);
                sched.stop();
            }
        }
    }

    /// Minimum residency on a cluster before migrating again.
    const MIGRATION_HOLD: SimDuration = SimDuration::from_secs(2);
    /// Demand headroom required to stay on (or move to) the LITTLE
    /// cluster, as a fraction of its top frequency.
    const LITTLE_HEADROOM: f64 = 0.85;
    /// Energy cost of moving the player between clusters (cache warmup,
    /// context migration), charged as transition energy.
    const MIGRATION_ENERGY_J: f64 = 2e-3;

    /// EAS-style automatic placement: when all cores are idle, compare the
    /// predicted demand against the LITTLE ceiling and swap clusters if
    /// the other one covers it more cheaply.
    fn maybe_migrate(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if self.standby.is_none()
            || now.saturating_duration_since(self.last_migration) < Self::MIGRATION_HOLD
        {
            return;
        }
        if (0..self.cluster.num_cores()).any(|c| self.cluster.is_core_busy(c)) {
            return;
        }
        let snapshot = self.snapshot(now, 16);
        let GovernorChoice::Eavs(g) = &mut self.governor else {
            self.snapshot_scratch = snapshot.upcoming;
            return;
        };
        // Momentary demand can dip while the decoded queue is full; the
        // sustained rate is what the target cluster must cover.
        let required = g
            .required_hz_for(&snapshot)
            .max(g.sustained_hz_for(&snapshot))
            * (1.0 + g.config().margin);
        self.snapshot_scratch = snapshot.upcoming;
        let standby = self.standby.as_mut().expect("checked above");
        // Which of the two tables is LITTLE? The one with the lower top
        // frequency.
        let active_is_little = self.cluster.opps().max_freq() < standby.opps().max_freq();
        let little_top_hz = if active_is_little {
            self.cluster.opps().max_freq().hz() as f64
        } else {
            standby.opps().max_freq().hz() as f64
        };
        let fits_little = required.is_finite() && required <= little_top_hz * Self::LITTLE_HEADROOM;
        if fits_little == active_is_little {
            return; // already on the right cluster
        }
        // Swap: wake the standby, gate the active.
        standby.set_gated(now, false);
        self.cluster.set_gated(now, true);
        std::mem::swap(&mut self.cluster, standby);
        self.migrations += 1;
        self.last_migration = now;
        // Load monitors are per-cluster counters; rebase them.
        self.monitor = LoadMonitor::new(now, self.cluster.core_busy_total(0));
        if self.cluster.num_cores() > 1 {
            self.monitor_bg = LoadMonitor::new(now, self.cluster.core_busy_total(1));
        }
        // Recompute the energy floor for the new table.
        let floor = crate::selector::critical_speed_index(
            self.cluster.opps(),
            self.cluster.power_model(),
            self.cluster
                .cstates()
                .iter()
                .last()
                .expect("idle states")
                .power_w,
        );
        g.set_energy_floor(floor);
        self.emit(now, || TraceEvent::Migration {
            to_little: fits_little,
        });
        self.govern(sched, now);
    }

    /// Periodic background burst on core 1 (never the decode core).
    fn on_background(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        let Some(bg) = self.background else { return };
        if self.cluster.num_cores() > 1 && !self.cluster.is_core_busy(1) {
            let cycles = self
                .cluster
                .current_freq()
                .cycles_in(bg.period.mul_f64(bg.duty));
            self.cluster.start_job(now, 1, cycles);
            self.emit(now, || TraceEvent::BackgroundBurst);
        }
        sched.schedule_at(now + bg.period, Ev::Background);
    }

    /// Updates die temperature from dissipated power and applies thermal
    /// caps to the policy limits (cpufreq cooling-device behavior).
    fn update_thermal(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        let Some((model, throttle)) = &mut self.thermal else {
            return;
        };
        let (last_t, last_e) = self.thermal_last;
        let dt = now.saturating_duration_since(last_t);
        if dt.is_zero() {
            return;
        }
        let energy = self.cluster.energy_at(now).total();
        let power = ((energy - last_e) / dt.as_secs_f64()).max(0.0);
        model.update(power, dt);
        self.thermal_last = (now, energy);
        let temp = model.temperature();
        self.peak_temp_c = Some(self.peak_temp_c.map_or(temp, |p| p.max(temp)));
        let allowed = throttle.max_index(temp, self.cluster.opps());
        if allowed != self.cluster.limits().max_index {
            self.cluster.set_limits(PolicyLimits {
                min_index: 0,
                max_index: allowed,
            });
            // Force the running target back inside the new cap.
            let target = self.cluster.target_index().min(allowed);
            self.cluster.set_target(now, target);
            self.reschedule_decode(sched, now);
        }
    }

    fn on_sample(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        self.update_thermal(sched, now);
        if matches!(self.governor, GovernorChoice::Eavs(_)) {
            // EAVS never reads utilization samples — its demand comes from
            // the pipeline snapshot — so the decision tick skips the load
            // monitor bookkeeping entirely.
            self.govern(sched, now);
            let interval = self.governor.sampling_interval();
            sched.schedule_at(now + interval, Ev::Sample);
            return;
        }
        let busy = self.cluster.core_busy_total(0);
        let sample0 = self.monitor.sample(
            now,
            busy,
            self.cluster.current_freq(),
            self.cluster.current_index(),
        );
        // Linux policies observe the busiest CPU of the domain; include
        // the background core when present.
        let sample = if self.cluster.num_cores() > 1 {
            let sample1 = self.monitor_bg.sample(
                now,
                self.cluster.core_busy_total(1),
                self.cluster.current_freq(),
                self.cluster.current_index(),
            );
            match (sample0, sample1) {
                (Some(a), Some(b)) => Some(if b.busy_fraction > a.busy_fraction {
                    b
                } else {
                    a
                }),
                (a, b) => a.or(b),
            }
        } else {
            sample0
        };
        match (&mut self.governor, sample) {
            (GovernorChoice::Baseline(g), Some(sample)) => {
                let idx = g.on_sample(&sample, self.cluster.opps(), self.cluster.limits());
                self.emit(now, || TraceEvent::GovernorDecision {
                    cur_khz: u64::from(self.cluster.current_freq().khz()),
                    target_khz: u64::from(self.cluster.opps().freq(idx).khz()),
                });
                self.apply_target(sched, now, idx);
            }
            (GovernorChoice::Kind { kind, lut }, Some(sample)) => {
                let idx = kind.decide(&sample, lut.get(self.cluster.opps(), self.cluster.limits()));
                self.emit(now, || TraceEvent::GovernorDecision {
                    cur_khz: u64::from(self.cluster.current_freq().khz()),
                    target_khz: u64::from(self.cluster.opps().freq(idx).khz()),
                });
                self.apply_target(sched, now, idx);
            }
            (GovernorChoice::Eavs(_), _) => unreachable!("EAVS tick handled above"),
            (GovernorChoice::Baseline(_) | GovernorChoice::Kind { .. }, None) => {}
        }
        let interval = self.governor.sampling_interval();
        sched.schedule_at(now + interval, Ev::Sample);
    }

    /// EAVS event-driven decision (no-op for baselines, which only act on
    /// their sampling tick).
    /// Re-validates the steady demand cache across a clean `Displayed`
    /// vsync. The display pop and the vsync advance cancel exactly in
    /// every cached deadline — `(V+τ) + τ·(d−1+k) = V + τ·(d+k)` in
    /// integer nanoseconds — and no observation ran, so the cached items
    /// are bit-identical to what a fresh snapshot walk would produce.
    /// When the freed decoded slot let a decode start, the cache
    /// *slides* instead: the head tail item becomes the in-flight item
    /// (same predicted cycles, same deadline, zero executed) and, if the
    /// lookahead window is still full, the newly visible frame is
    /// appended — the only predictor call on this path.
    fn revalidate_steady_after_display(&mut self, inflight_before: bool) {
        let started = !inflight_before && self.decode_event.is_some();
        if !started {
            // In-flight state untouched: every cached item is invariant.
            self.steady.epoch = self.pipeline_epoch;
            return;
        }
        if self.steady.inflight.is_some() || self.steady.tail.is_empty() {
            // A start implies the cache saw an idle core and a nonempty
            // window; anything else is stale — take the full path.
            return;
        }
        self.slide_steady_head();
    }

    /// Re-validates the steady demand cache across a decode completion.
    /// Dropping the finished item cancels the decoded-queue growth in
    /// every remaining deadline (`base` stays `d+1`), so the cached tail
    /// is deadline-exact. The predictor *did* observe the finished frame,
    /// but its observations are type-local
    /// ([`WorkloadPredictor::observe_is_type_local`]), so only cached
    /// items of the observed type need a fresh prediction. If the freed
    /// core picked up the next frame, the cache slides as in the display
    /// path.
    ///
    /// [`WorkloadPredictor::observe_is_type_local`]:
    /// crate::predictor::WorkloadPredictor::observe_is_type_local
    fn revalidate_steady_after_decode(&mut self, observed: FrameMeta) {
        if self.steady.inflight.is_none() {
            // Stale: a completion implies a cached in-flight item.
            return;
        }
        let GovernorChoice::Eavs(g) = &self.governor else {
            return;
        };
        if !g.observe_type_local() {
            return;
        }
        if self.steady.tail.is_empty() {
            // Dropping the finished item leaves an *empty* demand list;
            // the decision is no longer a `DEMAND` one (idle/ended
            // branches take over) — only the full path can tell.
            return;
        }
        self.steady.inflight = None;
        for (item, meta) in self.steady.tail.iter_mut().zip(&self.steady.tail_meta) {
            if meta.frame_type == observed.frame_type {
                item.cycles = g.predict(*meta);
            }
        }
        if self.decode_event.is_some() {
            self.slide_steady_head();
        } else {
            self.steady.epoch = self.pipeline_epoch;
        }
    }

    /// Slides the steady cache by one frame after a decode start: the
    /// head tail item becomes the in-flight item (its deadline and
    /// predicted cycles are invariant — see the call sites' proofs) and,
    /// when the lookahead window is still full, the newly visible frame
    /// gets the one fresh prediction on this path.
    fn slide_steady_head(&mut self) {
        let GovernorChoice::Eavs(g) = &self.governor else {
            return;
        };
        let la = g.config().lookahead;
        let mut entrant = None;
        if la > 0 {
            let mut seen = 0usize;
            let mut last_meta = None;
            for f in self.pipeline.peek_undecoded(la) {
                seen += 1;
                last_meta = Some(FrameMeta::from(f));
            }
            if seen == la {
                let meta = last_meta.expect("seen == la > 0");
                let tau = self.manifest.frame_duration();
                let base = self.pipeline.decoded_len() as u64 + 1;
                let j = (la - 1) as u64;
                entrant = Some((
                    DemandItem {
                        cycles: g.predict(meta),
                        deadline: self.next_vsync_at.saturating_add(tau * (base + j)),
                    },
                    meta,
                ));
            }
        }
        let head = self.steady.tail.remove(0);
        self.steady.tail_meta.remove(0);
        self.steady.inflight = Some((head.cycles, head.deadline));
        if let Some((item, meta)) = entrant {
            self.steady.tail.push(item);
            self.steady.tail_meta.push(meta);
        }
        self.steady.epoch = self.pipeline_epoch;
    }

    fn govern(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        // Baselines never act here; bail before building a snapshot.
        let GovernorChoice::Eavs(gov) = &self.governor else {
            return;
        };
        // A decision consumes at most the lookahead window, so peek
        // exactly that. At lookahead 0 one frame is still peeked: the
        // fill/floor branches steer on waiting-queue emptiness.
        let want = gov.config().lookahead.max(1);
        // Panic races are counted inside the governor; sample the counter
        // around the decision so the trace can mark the exact instant.
        // Only paid when a sink is listening.
        let tracing = self.trace.is_some();
        let panics_before = if tracing {
            match &self.governor {
                GovernorChoice::Eavs(g) => g.panics(),
                _ => 0,
            }
        } else {
            0
        };
        // Steady-tick fast path: the pipeline is untouched since the last
        // full DEMAND decision (no event but sample ticks fired), so the
        // cached demand list is exact — only the clock moved and only the
        // in-flight item's remaining cycles need re-deriving. Injection
        // replay keeps the full path (its demand comes from the recorded
        // timeline, not from this cache).
        if self.steady.epoch == self.pipeline_epoch
            && matches!(self.replay, ReplayState::Off | ReplayState::Record { .. })
        {
            let required = {
                let c = &mut self.steady;
                c.scratch.clear();
                if let Some((predicted, deadline)) = c.inflight {
                    let initial = self.decode_initial.expect("in-flight implies initial");
                    let remaining = self.cluster.core(0).remaining().unwrap_or(Cycles::ZERO);
                    let executed = initial.saturating_sub(remaining);
                    // Same overrun rule as the snapshot path: an overshot
                    // prediction leaves a 10% residual, not zero.
                    let cycles = if executed.get() >= predicted.get() {
                        predicted.scale(0.1)
                    } else {
                        predicted.saturating_sub(executed)
                    };
                    c.scratch.push(DemandItem { cycles, deadline });
                }
                c.scratch.extend_from_slice(&c.tail);
                required_hz(now, &c.scratch)
            };
            let GovernorChoice::Eavs(g) = &mut self.governor else {
                unreachable!("checked above");
            };
            let (idx, kind, recorded) = g.decide_steady(
                now,
                self.cluster.opps(),
                self.cluster.limits(),
                self.cluster.current_index(),
                required,
            );
            if let ReplayState::Record { records, .. } = &mut self.replay {
                records.push(DecisionRecord {
                    kind,
                    chosen: idx as u16,
                    required_bits: recorded.to_bits(),
                });
            }
            if tracing {
                if g.panics() > panics_before {
                    self.emit(now, || TraceEvent::PanicRace);
                }
                self.emit(now, || TraceEvent::GovernorDecision {
                    cur_khz: u64::from(self.cluster.current_freq().khz()),
                    target_khz: u64::from(self.cluster.opps().freq(idx).khz()),
                });
            }
            self.apply_target(sched, now, idx);
            return;
        }

        let clean = self.replay_clean();
        let snapshot = self.snapshot(now, want);
        let GovernorChoice::Eavs(g) = &mut self.governor else {
            unreachable!("checked above");
        };
        let opps = self.cluster.opps();
        let limits = self.cluster.limits();
        let cur = self.cluster.current_index();
        let (idx, demand_live) = match &mut self.replay {
            ReplayState::Off => {
                let (idx, kind, _) = g.decide_tagged(&snapshot, opps, limits, cur);
                (idx, kind == memo::decision_kind::DEMAND)
            }
            ReplayState::Record { records, .. } => {
                let idx = g.decide_recorded(&snapshot, opps, limits, cur, records);
                let kind = records.last().map(|r| r.kind);
                (idx, kind == Some(memo::decision_kind::DEMAND))
            }
            ReplayState::Inject {
                timeline,
                pos,
                live,
                injected,
            } => {
                let mut answered = None;
                if *live && clean {
                    if let Some(rec) = timeline.records.get(*pos).copied() {
                        answered = g.decide_replayed(&snapshot, opps, limits, cur, &rec);
                        match answered {
                            Some(idx) => {
                                *pos += 1;
                                *injected += 1;
                                if idx as u16 != rec.chosen {
                                    // This variant's own knobs diverged
                                    // from the recorder here. The injected
                                    // decision is still exact (the
                                    // trajectory matched up to this
                                    // instant), but every later recorded
                                    // demand belongs to a different future.
                                    *live = false;
                                }
                            }
                            None => *live = false,
                        }
                    } else {
                        *live = false;
                    }
                } else {
                    *live = false;
                }
                let idx = match answered {
                    Some(idx) => idx,
                    None => g.decide(&snapshot, opps, limits, cur),
                };
                (idx, false)
            }
        };
        if demand_live {
            // A live DEMAND decision just left its item list in the
            // governor's scratch: copy it into the steady cache so timer
            // ticks until the next pipeline event skip the rebuild. The
            // in-flight item is re-keyed by its *predicted* cost (its
            // remaining cycles are a function of the clock).
            let inflight = snapshot
                .in_flight
                .map(|ifm| (g.predict(ifm.meta), g.last_demand()[0].deadline));
            self.steady.tail.clear();
            self.steady
                .tail
                .extend_from_slice(&g.last_demand()[usize::from(inflight.is_some())..]);
            self.steady.tail_meta.clear();
            self.steady
                .tail_meta
                .extend_from_slice(&snapshot.upcoming[..self.steady.tail.len()]);
            self.steady.inflight = inflight;
            self.steady.epoch = self.pipeline_epoch;
        }
        let panics_after = if tracing { g.panics() } else { 0 };
        self.snapshot_scratch = snapshot.upcoming;
        if tracing {
            if panics_after > panics_before {
                self.emit(now, || TraceEvent::PanicRace);
            }
            self.emit(now, || TraceEvent::GovernorDecision {
                cur_khz: u64::from(self.cluster.current_freq().khz()),
                target_khz: u64::from(self.cluster.opps().freq(idx).khz()),
            });
        }
        self.apply_target(sched, now, idx);
    }

    /// Whether the run has, so far, shown no fault effect that could
    /// desynchronize it from a fault-free recording. Every fault counter
    /// is bumped *before* the same handler calls [`SessionWorld::govern`],
    /// and stale timeout events return before either, so this is exact at
    /// each decision site.
    fn replay_clean(&self) -> bool {
        !self.replay_dead
            && !self.ambient_fired
            && self.download_timeouts == 0
            && self.corrupt_downloads == 0
            && self.download_retries == 0
            && self.segments_abandoned == 0
            && self.decode_spikes == 0
            && self.decode_stalls == 0
    }

    /// Builds a pipeline snapshot carrying up to `want` waiting frames.
    /// Decisions only ever read the governor's lookahead window, so the
    /// govern path asks for exactly that; the placement path asks for the
    /// full 16-frame horizon its sustained-rate estimate integrates over.
    fn snapshot(&mut self, now: SimTime, want: usize) -> PipelineSnapshot {
        let in_flight = self.pipeline.in_flight().map(|frame| {
            let initial = self.decode_initial.expect("in-flight implies initial");
            let remaining = self.cluster.core(0).remaining().unwrap_or(Cycles::ZERO);
            InFlightMeta {
                meta: FrameMeta::from(frame),
                executed: initial.saturating_sub(remaining),
            }
        });
        let mut upcoming = std::mem::take(&mut self.snapshot_scratch);
        upcoming.clear();
        upcoming.extend(self.pipeline.peek_undecoded(want).map(FrameMeta::from));
        PipelineSnapshot {
            now,
            phase: self.playback.phase(),
            next_vsync: if self.playback.phase() == PlaybackPhase::Playing {
                self.next_vsync_at.max(now)
            } else {
                now
            },
            frame_period: self.manifest.frame_duration(),
            decoded_len: self.pipeline.decoded_len(),
            in_flight,
            upcoming,
        }
    }

    fn apply_target(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, idx: usize) {
        let before = self.cluster.target_index();
        if self.drive_via_sysfs {
            let khz = self.cluster.opps().freq(self.cluster.limits().clamp(idx));
            self.fs
                .write(
                    &mut self.cluster,
                    "scaling_setspeed",
                    &khz.khz().to_string(),
                    now,
                )
                .expect("setspeed write");
        } else {
            self.cluster.set_target(now, idx);
        }
        if self.cluster.target_index() != before {
            self.emit(now, || TraceEvent::FreqChange {
                from_khz: u64::from(self.cluster.opps().freq(before).khz()),
                to_khz: u64::from(self.cluster.opps().freq(self.cluster.target_index()).khz()),
            });
            if let Some(s) = &mut self.freq_series {
                s.set(
                    now,
                    self.cluster.opps().freq(self.cluster.target_index()).mhz() as f64,
                );
            }
            self.reschedule_decode(sched, now);
        }
    }

    fn reschedule_decode(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if let Some(ev) = self.decode_event.take() {
            sched.cancel(ev);
            let done = self
                .cluster
                .completion_time(now, 0)
                .expect("decode in flight");
            self.decode_event = Some(sched.schedule_at(done, Ev::DecodeDone));
        }
    }

    fn build_report(
        mut self,
        end: SimTime,
        events_processed: u64,
        scratch: &mut SessionScratch,
    ) -> SessionReport {
        // Replay epilogue. A timeline is published only when the run
        // stayed fully clean end to end: fault effects embed themselves
        // in recorded demand values in ways a later injector cannot
        // detect by `chosen`-matching alone.
        match std::mem::replace(&mut self.replay, ReplayState::Off) {
            ReplayState::Off => {}
            ReplayState::Record { key, records } => {
                if self.replay_clean() && self.blackout_cutoff.is_none() {
                    memo::store_decision_timeline(key, records);
                }
            }
            ReplayState::Inject { injected, .. } => {
                if injected > 0 {
                    REPLAYED_SESSIONS.fetch_add(1, Ordering::Relaxed);
                    INJECTED_DECISIONS.fetch_add(injected, Ordering::Relaxed);
                }
            }
        }
        let session_length = end - SimTime::ZERO;
        let mut cpu_energy = self.cluster.energy_at(end);
        if let Some(standby) = &mut self.standby {
            let other = standby.energy_at(end);
            cpu_energy.busy_j += other.busy_j;
            cpu_energy.idle_j += other.idle_j;
            cpu_energy.static_j += other.static_j;
            cpu_energy.transition_j += other.transition_j;
        }
        cpu_energy.transition_j += Self::MIGRATION_ENERGY_J * self.migrations as f64;
        let radio = self
            .radio
            .account(self.downloader.activity(end), session_length);
        let mut tis = std::mem::take(&mut scratch.tis);
        tis.clear();
        tis.reserve(self.cluster.opps().len());
        self.cluster.time_in_state_into(end, &mut tis);
        let mut time_in_state: Vec<(Frequency, SimDuration)> = Vec::with_capacity(tis.len());
        time_in_state.extend(
            tis.iter()
                .enumerate()
                .map(|(i, &d)| (self.cluster.opps().freq(i), d)),
        );
        let total: SimDuration = tis.iter().copied().sum();
        let mean_khz = if total.is_zero() {
            0.0
        } else {
            time_in_state
                .iter()
                .map(|(f, d)| f.khz() as f64 * d.as_secs_f64())
                .sum::<f64>()
                / total.as_secs_f64()
        };
        scratch.tis = tis;
        let startup_delay = self.playback.startup_delay().unwrap_or(session_length);
        let qoe = QoeReport::from_playback(
            &self.playback,
            &self.bitrates,
            startup_delay,
            session_length,
        );
        // Whole-device power is accounted post-hoc from the finished
        // timeline (download activity, chosen bitrates, manifest, seed):
        // it reads event-loop products, never event-loop state, so the
        // no-op model — and any other — cannot perturb the simulation.
        let power = self.power.account(
            self.seed,
            self.downloader.activity(end),
            &self.bitrates,
            &self.manifest,
            session_length,
        );
        // QoE and power were the last readers; hand the recycled buffers
        // back.
        self.bitrates.clear();
        scratch.bitrates = std::mem::take(&mut self.bitrates);
        self.snapshot_scratch.clear();
        scratch.snapshot = std::mem::take(&mut self.snapshot_scratch);
        self.truth_scratch.clear();
        scratch.truth = std::mem::take(&mut self.truth_scratch);
        let panic_races = match &self.governor {
            GovernorChoice::Eavs(g) => g.panics(),
            _ => 0,
        };
        if let Some(p) = &mut self.profile {
            // Simulated occupancy comes from the authoritative model
            // state, filled once here rather than summed incrementally,
            // so it cannot drift from the rest of the report.
            let download: SimDuration = self
                .downloader
                .activity(end)
                .iter()
                .map(|a| a.end.saturating_duration_since(a.start))
                .sum();
            p.set_sim_ns(Phase::Download, download.as_nanos());
            p.set_sim_ns(Phase::Decode, self.cluster.core_busy_total(0).as_nanos());
            p.set_sim_ns(
                Phase::Display,
                session_length
                    .saturating_sub(startup_delay)
                    .saturating_sub(qoe.rebuffer_time)
                    .as_nanos(),
            );
            // Governor decisions are instantaneous on the simulated
            // clock; their cost shows up in events and wall time only.
            p.set_sim_ns(Phase::Governor, 0);
        }
        // Frames still upstream of the decoder (undecoded + in flight);
        // decoded-queue leftovers are already counted in frames_decoded.
        let frames_pending = (self.pipeline.frames_buffered() - self.pipeline.decoded_len()) as u64;
        SessionReport {
            governor: self.governor.report_name(),
            soc: self.soc,
            cluster: if self.standby.is_some() {
                Arc::from("auto")
            } else {
                Arc::from(self.cluster.name())
            },
            migrations: self.migrations,
            content: self.content,
            cpu_energy,
            radio,
            power,
            qoe,
            session_length,
            mean_freq: Frequency::from_khz(mean_khz.round() as u32),
            transitions: self.cluster.transitions(),
            time_in_state,
            freq_series: self.freq_series.take(),
            buffer_series: self.buffer_series.take(),
            frames_decoded: self.pipeline.frames_decoded(),
            segments_downloaded: self.segments_downloaded,
            events_processed,
            peak_temp_c: self.peak_temp_c,
            background_jobs: if self.cluster.num_cores() > 1 {
                self.cluster.core(1).jobs_completed()
            } else {
                0
            },
            download_retries: self.download_retries,
            download_timeouts: self.download_timeouts,
            corrupt_downloads: self.corrupt_downloads,
            segments_abandoned: self.segments_abandoned,
            frames_skipped: self.frames_skipped,
            frames_pending,
            decode_spikes: self.decode_spikes,
            decode_stalls: self.decode_stalls,
            panic_races,
            frame_cycles: self.frame_cycles,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::EavsConfig;
    use crate::predictor::Hybrid;
    use eavs_governors::{Ondemand, Performance, Powersave};

    fn short_manifest() -> Manifest {
        Manifest::single(3_000, 1280, 720, SimDuration::from_secs(10), 30)
    }

    fn eavs() -> GovernorChoice {
        GovernorChoice::Eavs(EavsGovernor::new(
            Box::new(Hybrid::default()),
            EavsConfig::default(),
        ))
    }

    fn run(gov: GovernorChoice) -> SessionReport {
        StreamingSession::builder(gov)
            .manifest(short_manifest())
            .seed(3)
            .run()
    }

    #[test]
    fn performance_session_completes_cleanly() {
        let r = run(GovernorChoice::Baseline(Box::new(Performance)));
        assert_eq!(r.qoe.frames_displayed, r.qoe.total_frames);
        assert_eq!(r.qoe.late_vsyncs, 0, "max frequency never misses");
        assert_eq!(r.qoe.rebuffer_events, 0);
        assert!(r.cpu_joules() > 0.0);
        assert!(r.radio.energy_j > 0.0);
        assert!(r.session_length >= SimDuration::from_secs(10));
    }

    #[test]
    fn eavs_saves_energy_without_misses_vs_performance() {
        let perf = run(GovernorChoice::Baseline(Box::new(Performance)));
        let eavs = run(eavs());
        assert_eq!(eavs.qoe.frames_displayed, eavs.qoe.total_frames);
        assert!(
            eavs.cpu_joules() < perf.cpu_joules() * 0.95,
            "eavs {:.2} J !< performance {:.2} J",
            eavs.cpu_joules(),
            perf.cpu_joules()
        );
        assert!(
            eavs.qoe.deadline_miss_rate() < 0.01,
            "missing {:.3}%",
            eavs.qoe.deadline_miss_rate() * 100.0
        );
    }

    #[test]
    fn powersave_misses_deadlines_on_heavy_content() {
        let r = StreamingSession::builder(GovernorChoice::Baseline(Box::new(Powersave)))
            .manifest(Manifest::single(
                6_000,
                1920,
                1080,
                SimDuration::from_secs(10),
                30,
            ))
            .seed(3)
            .run();
        assert!(
            r.qoe.late_vsyncs > 0,
            "1080p at the floor frequency must miss deadlines"
        );
        // Playback drags out beyond real time.
        assert!(r.session_length > SimDuration::from_secs(12));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(eavs());
        let b = run(eavs());
        assert_eq!(a.cpu_joules(), b.cpu_joules());
        assert_eq!(a.qoe.frames_displayed, b.qoe.frames_displayed);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn sysfs_driven_eavs_matches_direct() {
        let direct = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(5)
            .run();
        let via_sysfs = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(5)
            .drive_via_sysfs(true)
            .run();
        assert_eq!(direct.cpu_joules(), via_sysfs.cpu_joules());
        assert_eq!(direct.transitions, via_sysfs.transitions);
        assert_eq!(direct.qoe.frames_displayed, via_sysfs.qoe.frames_displayed);
    }

    #[test]
    fn ondemand_runs_and_scales_down_sometimes() {
        let r = run(GovernorChoice::Baseline(Box::new(Ondemand::new())));
        assert_eq!(r.qoe.frames_displayed, r.qoe.total_frames);
        assert!(r.transitions > 0, "ondemand must move the frequency");
    }

    #[test]
    fn series_recording() {
        let r = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .record_series(true)
            .run();
        let freq = r.freq_series.expect("freq series");
        assert!(freq.len() > 1, "frequency must change over a session");
        let buffer = r.buffer_series.expect("buffer series");
        assert!(buffer.len() > 2);
    }

    #[test]
    fn time_in_state_covers_session() {
        let r = run(eavs());
        let total: SimDuration = r.time_in_state.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, r.session_length);
    }

    #[test]
    fn little_cluster_handles_light_content_cheaper_but_fails_heavy() {
        // 480p on the LITTLE cluster: cheaper than on big.
        let light = |select: ClusterSelect| {
            StreamingSession::builder(eavs())
                .manifest(Manifest::single(
                    1_500,
                    854,
                    480,
                    SimDuration::from_secs(10),
                    30,
                ))
                .cluster(select)
                .seed(3)
                .run()
        };
        let big = light(ClusterSelect::Big);
        let little = light(ClusterSelect::Little);
        assert_eq!(little.qoe.late_vsyncs, 0, "480p fits on LITTLE");
        assert!(
            little.cpu_joules() < big.cpu_joules(),
            "LITTLE {:.2} J !< big {:.2} J at 480p",
            little.cpu_joules(),
            big.cpu_joules()
        );
        assert_eq!(&*little.cluster, "flagship2016-little");
        // 1080p60 sport (~1.7 Gcyc/s sustained) exceeds the LITTLE
        // ceiling (1.59 GHz): misses are unavoidable.
        let heavy = StreamingSession::builder(eavs())
            .manifest(Manifest::single(
                6_000,
                1920,
                1080,
                SimDuration::from_secs(10),
                60,
            ))
            .content(ContentProfile::Sport)
            .cluster(ClusterSelect::Little)
            .seed(3)
            .run();
        assert!(
            heavy.qoe.late_vsyncs > 0,
            "1080p60 sport must overwhelm the LITTLE cluster"
        );
    }

    #[test]
    fn auto_placement_moves_light_content_to_little() {
        let m = || Manifest::single(1_500, 854, 480, SimDuration::from_secs(20), 30);
        let light = StreamingSession::builder(eavs())
            .manifest(m())
            .cluster(ClusterSelect::Auto)
            .seed(3)
            .run();
        assert!(light.migrations >= 1, "480p should migrate to LITTLE");
        assert_eq!(&*light.cluster, "auto");
        assert_eq!(light.qoe.frames_displayed, light.qoe.total_frames);
        assert_eq!(light.qoe.late_vsyncs, 0);
        // Energy should approach the static-LITTLE placement, far below
        // static big.
        let static_big = StreamingSession::builder(eavs())
            .manifest(m())
            .cluster(ClusterSelect::Big)
            .seed(3)
            .run();
        let static_little = StreamingSession::builder(eavs())
            .manifest(m())
            .cluster(ClusterSelect::Little)
            .seed(3)
            .run();
        assert!(
            light.cpu_joules() < static_big.cpu_joules() * 0.8,
            "auto {:.2} J !< 0.8 x big {:.2} J",
            light.cpu_joules(),
            static_big.cpu_joules()
        );
        assert!(
            light.cpu_joules() < static_little.cpu_joules() * 1.25,
            "auto {:.2} J should approach LITTLE {:.2} J",
            light.cpu_joules(),
            static_little.cpu_joules()
        );
    }

    #[test]
    fn auto_placement_keeps_heavy_content_on_big() {
        // 1080p60 sport exceeds the LITTLE ceiling; this workload is
        // borderline even on the big cluster, so the requirement is that
        // automatic placement does no worse than the static big baseline.
        let run_with = |select: ClusterSelect| {
            StreamingSession::builder(eavs())
                .manifest(Manifest::single(
                    6_000,
                    1920,
                    1080,
                    SimDuration::from_secs(10),
                    60,
                ))
                .content(ContentProfile::Sport)
                .cluster(select)
                .seed(3)
                .run()
        };
        let auto = run_with(ClusterSelect::Auto);
        let big = run_with(ClusterSelect::Big);
        assert!(
            auto.qoe.late_vsyncs <= big.qoe.late_vsyncs,
            "auto ({} late) must not be worse than static big ({} late)",
            auto.qoe.late_vsyncs,
            big.qoe.late_vsyncs
        );
        assert!(auto.cpu_joules() <= big.cpu_joules() * 1.02);
    }

    #[test]
    #[should_panic(expected = "requires the EAVS governor")]
    fn auto_placement_rejects_baselines() {
        StreamingSession::builder(GovernorChoice::Baseline(Box::new(Performance)))
            .cluster(ClusterSelect::Auto)
            .run();
    }

    #[test]
    fn drop_policy_trades_frames_for_schedule() {
        use eavs_video::display::LatePolicy;
        let manifest = || Manifest::single(6_000, 1920, 1080, SimDuration::from_secs(15), 30);
        let run_ps = |policy| {
            StreamingSession::builder(GovernorChoice::Baseline(Box::new(Powersave)))
                .manifest(manifest())
                .late_policy(policy)
                .seed(3)
                .run()
        };
        let stall = run_ps(LatePolicy::Stall);
        let drop = run_ps(LatePolicy::Drop);
        // Stall: every frame eventually shows, but the session stretches.
        assert_eq!(stall.qoe.frames_displayed, stall.qoe.total_frames);
        assert!(stall.session_length > SimDuration::from_secs(18));
        // Drop: session stays on schedule, frames are sacrificed.
        assert!(drop.session_length < SimDuration::from_secs(17));
        assert!(drop.qoe.frames_dropped > 100);
        assert!(drop.qoe.frames_displayed + drop.qoe.frames_dropped <= drop.qoe.total_frames);
        assert!(drop.qoe.deadline_miss_rate() > 0.5);
        // A sufficient governor is indifferent to the policy.
        let eavs_drop = StreamingSession::builder(eavs())
            .manifest(manifest())
            .late_policy(LatePolicy::Drop)
            .seed(3)
            .run();
        assert_eq!(eavs_drop.qoe.frames_dropped, 0);
        assert_eq!(eavs_drop.qoe.frames_displayed, eavs_drop.qoe.total_frames);
    }

    #[test]
    fn thermal_model_tracks_and_throttles() {
        use eavs_cpu::thermal::{ThermalModel, ThrottleController};
        // An aggressive throttle window so even a short session trips it
        // under the performance governor.
        let hot = StreamingSession::builder(GovernorChoice::Baseline(Box::new(Performance)))
            .manifest(Manifest::single(
                6_000,
                1920,
                1080,
                SimDuration::from_secs(20),
                30,
            ))
            .thermal(
                ThermalModel::new(25.0, 20.0, 0.5), // tiny capacitance: fast heating
                ThrottleController::new(35.0, 90.0),
            )
            .seed(3)
            .run();
        let peak = hot.peak_temp_c.expect("thermal enabled");
        assert!(peak > 35.0, "performance must trip the throttle: {peak}°C");
        assert!(
            hot.mean_freq < Frequency::from_mhz(2150),
            "throttling must pull the mean below max"
        );
        // The same workload under EAVS stays cooler.
        let cool = StreamingSession::builder(eavs())
            .manifest(Manifest::single(
                6_000,
                1920,
                1080,
                SimDuration::from_secs(20),
                30,
            ))
            .thermal(
                ThermalModel::new(25.0, 20.0, 0.5),
                ThrottleController::new(35.0, 90.0),
            )
            .seed(3)
            .run();
        assert!(cool.peak_temp_c.expect("enabled") < peak);
    }

    #[test]
    fn background_load_runs_and_does_not_break_playback() {
        let r = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .background_load(0.3, SimDuration::from_millis(100))
            .seed(3)
            .run();
        assert!(r.background_jobs > 50, "bursts ran: {}", r.background_jobs);
        assert_eq!(r.qoe.frames_displayed, r.qoe.total_frames);
        assert_eq!(r.qoe.late_vsyncs, 0, "decode core is unaffected");
        // And without background, no jobs on core 1.
        let quiet = run(eavs());
        assert_eq!(quiet.background_jobs, 0);
    }

    #[test]
    fn background_load_costs_baselines_more_than_eavs() {
        let run_bg = |gov: GovernorChoice| {
            StreamingSession::builder(gov)
                .manifest(Manifest::single(
                    6_000,
                    1920,
                    1080,
                    SimDuration::from_secs(15),
                    30,
                ))
                .background_load(0.35, SimDuration::from_millis(50))
                .seed(3)
                .run()
        };
        let od = run_bg(GovernorChoice::Baseline(Box::new(Ondemand::new())));
        let ev = run_bg(eavs());
        // ondemand reacts to the polluted load signal; EAVS keys off the
        // video pipeline only.
        assert!(
            ev.cpu_joules() < od.cpu_joules(),
            "eavs {:.2} J !< ondemand {:.2} J under background load",
            ev.cpu_joules(),
            od.cpu_joules()
        );
        assert_eq!(ev.qoe.late_vsyncs, 0);
    }

    #[test]
    fn traced_session_is_unperturbed_and_timeline_is_deterministic() {
        use eavs_obs::{shared, RingSink};
        let plain = run(eavs());
        let record = || {
            let sink = shared(RingSink::new(1 << 16));
            let report = StreamingSession::builder(eavs())
                .manifest(short_manifest())
                .seed(3)
                .trace(sink.clone())
                .run();
            let ring = sink.lock().unwrap();
            (report, ring.to_jsonl(), ring.total_recorded())
        };
        let (traced, jsonl_a, recorded) = record();
        // Observation changes nothing about the outcome...
        assert_eq!(plain.cpu_joules(), traced.cpu_joules());
        assert_eq!(plain.events_processed, traced.events_processed);
        assert_eq!(plain.transitions, traced.transitions);
        assert_eq!(plain.qoe.frames_displayed, traced.qoe.frames_displayed);
        // ...the timeline is rich (engine dispatches + semantic events)...
        assert!(recorded > traced.events_processed, "tap + handler events");
        assert!(jsonl_a.contains(r#""ev":"playback_start""#));
        assert!(jsonl_a.contains(r#""ev":"governor_decision""#));
        assert!(jsonl_a.contains(r#""ev":"decode_start""#));
        // ...and byte-identical on a re-run.
        let (_, jsonl_b, _) = record();
        assert_eq!(jsonl_a, jsonl_b);
    }

    #[test]
    fn observers_do_not_perturb_the_fingerprint() {
        use eavs_obs::{shared, NullSink};
        let base = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(3);
        let fp_plain = base.fingerprint().expect("cacheable");
        let observed = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(3)
            .trace(shared(NullSink))
            .profile(true);
        assert!(observed.has_observer());
        assert_eq!(Some(fp_plain), observed.fingerprint());
        assert!(!base.has_observer());
    }

    #[test]
    fn profile_reports_phase_breakdown() {
        let r = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(3)
            .profile(true)
            .run();
        let p = r.profile.expect("profiling was requested");
        assert!(p.total_events() > 0);
        assert_eq!(p.total_events(), r.events_processed);
        assert!(p.download.sim_ns > 0, "segments were transferred");
        assert!(p.decode.sim_ns > 0, "frames were decoded");
        assert!(p.display.sim_ns > 0, "playback happened");
        assert!(p.display.events > 0, "vsyncs were handled");
        // Unprofiled runs carry no breakdown.
        assert!(run(eavs()).profile.is_none());
    }

    #[test]
    fn constrained_network_causes_rebuffering() {
        // 3 Mbps content over a 1 Mbps link: cannot sustain playback.
        let r = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .network(BandwidthTrace::constant(1e6))
            .run();
        assert!(r.qoe.rebuffer_events > 0 || r.qoe.frames_displayed < r.qoe.total_frames);
    }

    fn eavs_with(config: EavsConfig) -> GovernorChoice {
        GovernorChoice::Eavs(EavsGovernor::new(Box::new(Hybrid::default()), config))
    }

    fn replay_pair(config: EavsConfig, seed: u64) -> (SessionBuilder, SessionBuilder) {
        let mk = || {
            StreamingSession::builder(eavs_with(config))
                .manifest(short_manifest())
                .seed(seed)
        };
        (mk(), mk())
    }

    #[test]
    fn replay_prefix_collapses_live_knobs_and_excludes_faults() {
        let base = replay_pair(EavsConfig::default(), 3).0;
        let variant = StreamingSession::builder(eavs_with(EavsConfig {
            margin: 0.40,
            down_hysteresis: 1,
            race_on_fill: false,
            ..EavsConfig::default()
        }))
        .manifest(short_manifest())
        .seed(3);
        assert_eq!(
            base.replay_prefix().expect("prefixable"),
            variant.replay_prefix().expect("prefixable"),
            "margin/hysteresis/race are live knobs, not prefix inputs"
        );
        assert_ne!(base.fingerprint(), variant.fingerprint());
        let faulted = StreamingSession::builder(eavs_with(EavsConfig::default()))
            .manifest(short_manifest())
            .seed(3)
            .faults(FaultPlan::standard_storm());
        assert_eq!(
            base.replay_prefix(),
            faulted.replay_prefix(),
            "fault plans diverge observably, so they stay out of the prefix"
        );
        let powered = StreamingSession::builder(eavs_with(EavsConfig::default()))
            .manifest(short_manifest())
            .seed(3)
            .power(DevicePowerModel::phone());
        assert_eq!(
            base.replay_prefix(),
            powered.replay_prefix(),
            "power accounting is post-hoc, so it stays out of the prefix"
        );
        assert_ne!(
            base.fingerprint(),
            powered.fingerprint(),
            "a modeled power component must split the session fingerprint"
        );
        let noop_power = StreamingSession::builder(eavs_with(EavsConfig::default()))
            .manifest(short_manifest())
            .seed(3)
            .power(DevicePowerModel::none());
        assert_eq!(
            base.fingerprint(),
            noop_power.fingerprint(),
            "the zero-power no-op shares the fingerprint of no model at all"
        );
        let other_seed = replay_pair(EavsConfig::default(), 4).0;
        assert_ne!(base.replay_prefix(), other_seed.replay_prefix());
        let baseline = StreamingSession::builder(GovernorChoice::Baseline(Box::new(Performance)))
            .manifest(short_manifest());
        assert_eq!(baseline.replay_prefix(), None);
    }

    #[test]
    fn replayed_variant_is_byte_identical_to_full_simulation() {
        let variant_cfg = EavsConfig {
            margin: 0.35,
            down_hysteresis: 1,
            ..EavsConfig::default()
        };
        // Full simulations of recorder and variant, untouched by replay.
        let (rec_full, _) = replay_pair(EavsConfig::default(), 9);
        let key = rec_full.replay_prefix().expect("prefixable");
        let expected = {
            let b = StreamingSession::builder(eavs_with(variant_cfg))
                .manifest(short_manifest())
                .seed(9);
            format!("{:?}", b.run())
        };
        // Record the base timeline, then inject it into the variant.
        let _ = replay_pair(EavsConfig::default(), 9)
            .0
            .replay(ReplayCtl::Record(key))
            .run();
        let timeline = memo::decision_timeline(key).expect("timeline stored");
        assert!(!timeline.records.is_empty());
        let injected_before = injected_decisions();
        let replayed_before = replayed_sessions();
        let got = StreamingSession::builder(eavs_with(variant_cfg))
            .manifest(short_manifest())
            .seed(9)
            .replay(ReplayCtl::Inject(timeline))
            .run();
        assert_eq!(format!("{got:?}"), expected, "replay must be invisible");
        assert!(
            injected_decisions() > injected_before,
            "some decisions must have been answered from the timeline"
        );
        assert_eq!(replayed_sessions(), replayed_before + 1);
    }

    #[test]
    fn faulted_recording_is_never_published() {
        let b = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(11)
            .faults(FaultPlan::standard_storm());
        let key = b.replay_prefix().expect("prefixable");
        let _ = b.replay(ReplayCtl::Record(key)).run();
        assert!(
            memo::decision_timeline(key).is_none(),
            "a fault-perturbed timeline must not be stored"
        );
    }

    #[test]
    fn faulted_injection_falls_back_to_full_decisions() {
        // Record clean, inject into a *faulted* twin: the report must
        // match the faulted full simulation exactly.
        let clean = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(13);
        let key = clean.replay_prefix().expect("prefixable");
        let _ = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(13)
            .replay(ReplayCtl::Record(key))
            .run();
        let timeline = memo::decision_timeline(key).expect("stored");
        let plan = FaultPlan::standard_storm();
        let expected = format!(
            "{:?}",
            StreamingSession::builder(eavs())
                .manifest(short_manifest())
                .seed(13)
                .faults(plan.clone())
                .run()
        );
        let got = StreamingSession::builder(eavs())
            .manifest(short_manifest())
            .seed(13)
            .faults(plan)
            .replay(ReplayCtl::Inject(timeline))
            .run();
        assert_eq!(format!("{got:?}"), expected);
    }
}
