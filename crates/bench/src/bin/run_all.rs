//! Regenerates every table and figure of the evaluation (DESIGN.md §4),
//! printing each and writing CSVs under `results/`.
//!
//! Experiments are submitted to the shared work-stealing pool as top-level
//! jobs; each experiment's internal sweep fans out through the same pool, so
//! the whole suite interleaves without per-figure barriers. Results are
//! printed and written in presentation order regardless of completion order.
//!
//! `run_all --twice` regenerates the suite a second time in the same
//! process — the first pass fills the content-addressed session cache, the
//! second is served from it. The warm pass writes its CSVs under
//! `<results>/warm/` so CI can byte-compare cold against warm output, and
//! both wall times plus the speedup are printed for the record.

fn regenerate() -> Vec<(&'static str, eavs_metrics::table::Table)> {
    let jobs = eavs_bench::all_experiments()
        .into_iter()
        .map(|(id, f)| {
            let job = move || {
                let table = f();
                eprintln!("== {id} done ==");
                (id, table)
            };
            (id.to_string(), job)
        })
        .collect();
    eavs_bench::harness::run_parallel_labeled(jobs)
}

fn main() {
    let mut twice = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--twice" => twice = true,
            other => {
                eprintln!("error: unknown argument {other:?}\nusage: run_all [--twice]");
                std::process::exit(2);
            }
        }
    }

    let started = std::time::Instant::now();
    for (id, table) in regenerate() {
        eavs_bench::harness::emit(id, &table);
    }
    let cold_s = started.elapsed().as_secs_f64();
    eprintln!("all experiments regenerated in {cold_s:.1} s");

    if twice {
        let warm_dir = eavs_bench::harness::results_dir().join("warm");
        let started = std::time::Instant::now();
        for (id, table) in regenerate() {
            eavs_bench::harness::emit_into(&warm_dir, id, &table);
        }
        let warm_s = started.elapsed().as_secs_f64();
        let stats = eavs_bench::cache::stats();
        eprintln!(
            "warm pass in {warm_s:.1} s ({:.1}x; session cache {} hits / {} misses / {} uncacheable)",
            cold_s / warm_s.max(1e-9),
            stats.hits,
            stats.misses,
            stats.uncacheable,
        );
    }
}
