//! Regenerates experiment `t4_soc_matrix` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "t4_soc_matrix")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
