//! # eavs-fleet — fleet-scale population campaigns
//!
//! The per-figure experiments simulate a handful of sessions; a production
//! claim ("millions of users") needs the *population* shape: energy and
//! QoE distributions per governor over heterogeneous devices, networks and
//! content. This crate expands a declarative [`spec::CampaignSpec`] into N
//! deterministic sessions and folds their reports into mergeable
//! [`aggregate::FleetAggregate`]s so memory stays O(shards), never O(N).
//!
//! Determinism contract (see DESIGN.md §12):
//!
//! * every per-session decision (device, network, trace seed, content,
//!   title, ABR, workload seed, arrival) is drawn by SplitMix on the
//!   stable coordinate `(campaign_seed, session_id)` — the same
//!   convention `eavs-faults` uses — so a session's configuration is a
//!   pure function of the spec, independent of execution order;
//! * aggregates hold only integer counters, fixed-point
//!   [`eavs_metrics::stats::ExactSum`]s, histograms and f64 min/max, all
//!   of whose merges are bit-exact associative and commutative, so
//!   per-shard partials fold to the same bits for any shard interleaving;
//! * checkpoints serialize the merged aggregate plus the shard cursor,
//!   so a killed campaign resumes to byte-identical final output.
//!
//! The crate is engine-agnostic: [`campaign::run_campaign`] takes the
//! shard runner as a closure, so the library has no dependency on the
//! bench harness. `eavs-bench` injects its work-stealing pool and
//! content-addressed session cache; tests inject a serial runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod campaign;
pub mod checkpoint;
pub mod prior;
pub mod progress;
pub mod prom;
pub mod spec;

pub use aggregate::{FleetAggregate, GovAggregate};
pub use prior::PriorStore;
pub use campaign::{
    run_campaign, run_shard, run_shard_warm, CampaignOutcome, CampaignStatus, RunOptions,
    ShardOutcome,
};
pub use progress::{GovSnapshot, ProgressSnapshot};
pub use spec::CampaignSpec;
