//! Regenerates F26 (fleet population distributions; see DESIGN.md §12).
//!
//! Runs the *global* campaign — 10 000 sessions × 5 governors over the
//! full device/network/content mix — and writes the per-governor
//! population table to `results/fleet/f26_fleet_population.csv`. Kept
//! out of `run_all` and the per-figure golden set: fleet figures live
//! under `results/fleet/` on their own cadence.

fn main() {
    let table = eavs_bench::fleet::f26_fleet_population();
    println!("{}", table.render());
    let dir = eavs_bench::harness::results_dir().join("fleet");
    eavs_bench::harness::emit_into(&dir, "f26_fleet_population", &table);
    let stats = eavs_bench::cache::stats();
    eprintln!(
        "session cache: {} hits / {} misses ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
