//! Property-based tests for the simulation kernel.

use eavs_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Instant/duration arithmetic round-trips.
    #[test]
    fn time_add_then_sub_roundtrips(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// Duration addition is commutative and associative (absent overflow).
    #[test]
    fn duration_monoid(a in 0u64..1u64 << 60, b in 0u64..1u64 << 60, c in 0u64..1u64 << 60) {
        let (a, b, c) = (
            SimDuration::from_nanos(a >> 2),
            SimDuration::from_nanos(b >> 2),
            SimDuration::from_nanos(c >> 2),
        );
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + SimDuration::ZERO, a);
    }

    /// Popping the queue yields events in non-decreasing time order, and
    /// same-time events preserve insertion order.
    #[test]
    fn queue_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for same-time events");
                }
            }
            last = Some((t, i));
        }
    }

    /// Cancelled events never pop; exactly the survivors pop.
    #[test]
    fn queue_cancellation(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_nanos(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// The engine's clock never moves backwards regardless of scheduling
    /// pattern, and processes exactly the scheduled number of events.
    #[test]
    fn engine_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        struct Chain {
            remaining: Vec<u64>,
            observed: Vec<SimTime>,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
                self.observed.push(sched.now());
                if let Some(d) = self.remaining.pop() {
                    sched.schedule_in(SimDuration::from_nanos(d), ());
                }
            }
        }
        let n = delays.len();
        let mut sim = Simulation::new(Chain { remaining: delays, observed: Vec::new() });
        sim.scheduler().schedule_at(SimTime::ZERO, ());
        sim.run();
        let observed = &sim.world().observed;
        prop_assert_eq!(observed.len(), n + 1);
        for w in observed.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// Forked RNG streams are reproducible.
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), label in "[a-z]{1,8}") {
        let mut a = SimRng::new(seed).fork(&label);
        let mut b = SimRng::new(seed).fork(&label);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// uniform_u64 stays within bounds for arbitrary ranges.
    #[test]
    fn rng_uniform_u64_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            let v = r.uniform_u64(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// Periodic tick times are exactly start + k*period.
    #[test]
    fn periodic_exact(start in 0u64..1u64 << 40, period in 1u64..1u64 << 20, k in 0u64..64) {
        let mut p = Periodic::starting_at(SimTime::from_nanos(start), SimDuration::from_nanos(period));
        for i in 0..=k {
            let t = p.advance();
            prop_assert_eq!(t.as_nanos(), start + i * period);
        }
    }

    /// The slab queue agrees with a naive sorted-Vec reference model under
    /// arbitrary interleavings of push, cancel and pop, including FIFO order
    /// among same-instant events and `is_empty`/`len` bookkeeping.
    #[test]
    fn queue_matches_naive_model(ops in proptest::collection::vec((0u8..4, 0u64..16, 0u64..1 << 32), 1..300)) {
        // Model entry: (time, insertion seq, payload). Kept unsorted; the
        // model "pops" by scanning for the (time, seq) minimum, which is the
        // contract the slab queue must match exactly.
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64, u64)> = Vec::new();
        let mut live: Vec<(EventId, u64)> = Vec::new(); // (handle, model seq)
        let mut next_seq = 0u64;
        for &(op, time, sel) in &ops {
            match op {
                // Push. Times are drawn from a tiny range so same-instant
                // collisions are common, exercising the FIFO tiebreak.
                0 | 1 => {
                    let payload = next_seq;
                    let id = q.push(SimTime::from_nanos(time), payload);
                    model.push((time, next_seq, payload));
                    live.push((id, next_seq));
                    next_seq += 1;
                }
                // Cancel a pseudo-random live event.
                2 => {
                    if !live.is_empty() {
                        let (id, seq) = live.swap_remove(sel as usize % live.len());
                        prop_assert!(q.cancel(id), "live handle must cancel");
                        prop_assert!(!q.cancel(id), "double cancel must fail");
                        model.retain(|&(_, s, _)| s != seq);
                    }
                }
                // Pop and compare against the model minimum.
                _ => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(t, s, _))| (t, s))
                        .map(|(i, &(t, _, p))| (i, t, p));
                    match (q.pop(), expect) {
                        (None, None) => {}
                        (Some((qt, qp)), Some((i, mt, mp))) => {
                            prop_assert_eq!(qt.as_nanos(), mt);
                            prop_assert_eq!(qp, mp);
                            let (_, seq, _) = model.remove(i);
                            live.retain(|&(_, s)| s != seq);
                        }
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "pop mismatch: queue={got:?} model={want:?}"
                            )));
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain: remaining events come out in exact (time, seq) order.
        model.sort_unstable_by_key(|&(t, s, _)| (t, s));
        for &(t, _, p) in &model {
            let (qt, qp) = q.pop().expect("queue drained early");
            prop_assert_eq!(qt.as_nanos(), t);
            prop_assert_eq!(qp, p);
        }
        prop_assert!(q.pop().is_none());
    }

    /// Slot reuse never resurrects a retired handle: once an event has been
    /// popped or cancelled, its `EventId` stays dead forever, no matter how
    /// many later events recycle the same slab slot.
    #[test]
    fn queue_retired_ids_stay_dead(ops in proptest::collection::vec((0u8..3, 0u64..8), 1..200)) {
        let mut q = EventQueue::new();
        let mut live: Vec<EventId> = Vec::new();
        let mut retired: Vec<EventId> = Vec::new();
        for (i, &(op, time)) in ops.iter().enumerate() {
            match op {
                0 => live.push(q.push(SimTime::from_nanos(time), i)),
                1 => {
                    if !live.is_empty() {
                        let id = live.swap_remove(time as usize % live.len());
                        prop_assert!(q.cancel(id));
                        retired.push(id);
                    }
                }
                _ => {
                    if q.pop().is_some() {
                        // We popped *some* live handle; find and retire it:
                        // exactly one live id must now fail to cancel... but
                        // probing with cancel would itself retire survivors.
                        // Instead retire lazily: ids whose slot got recycled
                        // are caught by the sweep below either way.
                        live.retain(|&id| {
                            let alive = q.contains(id);
                            if !alive {
                                retired.push(id);
                            }
                            alive
                        });
                    }
                }
            }
            // No retired handle may be visible or cancellable, even though
            // new pushes keep reusing the same slots with fresh generations.
            for &old in &retired {
                prop_assert!(!q.contains(old), "retired id {old} resurrected");
            }
        }
        for old in retired {
            prop_assert!(!q.cancel(old), "retired id {old} cancelled a live event");
        }
    }
}
