//! # eavs-metrics — measurement infrastructure for EAVS experiments
//!
//! Statistics utilities shared by every layer of the EAVS reproduction:
//!
//! * [`stats`] — streaming mean/variance ([`stats::OnlineStats`]).
//! * [`quantile`] — exact and P² streaming quantiles.
//! * [`histogram`] — fixed-bin histograms and labeled counters.
//! * [`residency`] — time-in-state tracking (cpufreq `time_in_state`).
//! * [`timeseries`] — piecewise-constant signals with time-weighted means.
//! * [`energy`] — per-component joule accounting.
//! * [`ci`] — Student-t confidence intervals for repeated runs.
//! * [`table`] — ASCII table / CSV rendering for the bench harness.
//!
//! All types are plain data with no interior mutability; parallel sweeps
//! merge per-shard accumulators explicitly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod energy;
pub mod histogram;
pub mod quantile;
pub mod residency;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use ci::{mean_confidence_interval, ConfidenceInterval};
pub use energy::EnergyAccount;
pub use histogram::{Counter, Histogram};
pub use quantile::{P2Quantile, Quantiles};
pub use residency::ResidencyTracker;
pub use stats::{OnlineStats, Summary};
pub use table::Table;
pub use timeseries::StepSeries;
