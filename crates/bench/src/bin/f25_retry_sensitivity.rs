//! Regenerates experiment `f25_retry_sensitivity` (see DESIGN.md §11).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f25_retry_sensitivity")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
