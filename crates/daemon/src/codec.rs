//! `CampaignSpec` ⇄ JSON.
//!
//! The wire shape is the one `POST /campaigns` accepts. Encoding uses
//! shortest-round-trip `Display` for floats and raw decimal for
//! integers, and decoding parses them correctly rounded, so
//! `decode(encode(spec))` reproduces the spec **exactly** — same
//! `PartialEq` value, same 128-bit fingerprint, hence the same campaign
//! id and checkpoint compatibility. Unknown fields are rejected rather
//! than ignored: a typoed knob must not silently run a different
//! campaign.

use eavs_cpu::soc::SocModel;
use eavs_fleet::spec::{AbrChoice, CampaignSpec, NetworkChoice, TitleSpec};
use eavs_power::{DecoderModel, DevicePowerModel, DisplayModel, RrcRadioModel};
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;
use eavs_trace::net_gen::NetworkProfile;

use crate::json::{parse, Value};

/// Serializes a spec to its wire JSON.
pub fn encode_spec(spec: &CampaignSpec) -> String {
    let weighted = |items: Vec<(Value, f64)>, key: &str| {
        Value::Arr(
            items
                .into_iter()
                .map(|(v, w)| Value::Obj(vec![(key.to_owned(), v), ("weight".into(), Value::f64(w))]))
                .collect(),
        )
    };
    let hist = |(lo, hi, bins): (f64, f64, usize)| {
        Value::Arr(vec![Value::f64(lo), Value::f64(hi), Value::u64(bins as u64)])
    };
    let power = if spec.power.is_none() {
        Value::Null
    } else {
        Value::Obj(vec![
            ("radio".into(), spec.power.radio.map_or(Value::Null, radio_to_json)),
            (
                "display".into(),
                spec.power.display.map_or(Value::Null, display_to_json),
            ),
            (
                "decoder".into(),
                spec.power.decoder.map_or(Value::Null, decoder_to_json),
            ),
        ])
    };
    Value::Obj(vec![
        ("name".into(), Value::str(&spec.name)),
        ("seed".into(), Value::u64(spec.seed)),
        ("sessions".into(), Value::u64(spec.sessions)),
        ("shard_size".into(), Value::u64(spec.shard_size)),
        (
            "governors".into(),
            Value::Arr(spec.governors.iter().map(Value::str).collect()),
        ),
        (
            "devices".into(),
            weighted(
                spec.devices
                    .iter()
                    .map(|(soc, w)| (Value::str(soc.name()), *w))
                    .collect(),
                "soc",
            ),
        ),
        (
            "networks".into(),
            weighted(
                spec.networks
                    .iter()
                    .map(|(net, w)| (Value::str(net.name()), *w))
                    .collect(),
                "network",
            ),
        ),
        (
            "contents".into(),
            weighted(
                spec.contents
                    .iter()
                    .map(|(c, w)| (Value::str(c.name()), *w))
                    .collect(),
                "content",
            ),
        ),
        (
            "titles".into(),
            Value::Arr(
                spec.titles
                    .iter()
                    .map(|(t, w)| {
                        Value::Obj(vec![
                            ("bitrate_kbps".into(), Value::u64(t.bitrate_kbps.into())),
                            ("width".into(), Value::u64(t.width.into())),
                            ("height".into(), Value::u64(t.height.into())),
                            ("duration_s".into(), Value::u64(t.duration_s)),
                            ("fps".into(), Value::u64(t.fps.into())),
                            ("weight".into(), Value::f64(*w)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "abrs".into(),
            weighted(
                spec.abrs
                    .iter()
                    .map(|(a, w)| (Value::str(a.name()), *w))
                    .collect(),
                "abr",
            ),
        ),
        ("trace_pool".into(), Value::u64(spec.trace_pool)),
        ("seed_pool".into(), Value::u64(spec.seed_pool)),
        ("arrival_span_s".into(), Value::u64(spec.arrival_span_s)),
        ("power".into(), power),
        ("energy_hist".into(), hist(spec.energy_hist)),
        ("qoe_hist".into(), hist(spec.qoe_hist)),
        ("startup_hist_ms".into(), hist(spec.startup_hist_ms)),
    ])
    .render()
}

fn radio_to_json(r: RrcRadioModel) -> Value {
    Value::Obj(vec![
        ("idle_power_w".into(), Value::f64(r.idle_power_w)),
        ("promo_power_w".into(), Value::f64(r.promo_power_w)),
        ("active_power_w".into(), Value::f64(r.active_power_w)),
        ("tail_power_w".into(), Value::f64(r.tail_power_w)),
        (
            "promotion_latency_ns".into(),
            Value::u64(r.promotion_latency.as_nanos()),
        ),
        ("tail_timer_ns".into(), Value::u64(r.tail_timer.as_nanos())),
    ])
}

fn display_to_json(d: DisplayModel) -> Value {
    Value::Obj(vec![
        ("brightness".into(), Value::f64(d.brightness)),
        ("base_power_w".into(), Value::f64(d.base_power_w)),
        ("full_power_w".into(), Value::f64(d.full_power_w)),
        ("similarity_gain".into(), Value::f64(d.similarity_gain)),
    ])
}

fn decoder_to_json(d: DecoderModel) -> Value {
    Value::Obj(vec![
        ("decode_j_per_mpx".into(), Value::f64(d.decode_j_per_mpx)),
        ("upscale_j_per_mpx".into(), Value::f64(d.upscale_j_per_mpx)),
        ("display_width".into(), Value::u64(d.display_width.into())),
        ("display_height".into(), Value::u64(d.display_height.into())),
    ])
}

/// Parses wire JSON into a spec. Strict: unknown or missing fields are
/// errors, every message names the offending path.
///
/// # Errors
///
/// Returns a path-annotated message on malformed JSON, wrong types,
/// unknown names, or unknown fields. (Semantic checks beyond shape —
/// positive sessions, non-empty mixes — stay in
/// [`CampaignSpec::validate`], which callers run next.)
pub fn decode_spec(input: &str) -> Result<CampaignSpec, String> {
    let root = parse(input)?;
    decode_spec_value(&root)
}

/// [`decode_spec`] over an already-parsed tree (e.g. a spec embedded in
/// a claim response).
///
/// # Errors
///
/// Same as [`decode_spec`].
pub fn decode_spec_value(root: &Value) -> Result<CampaignSpec, String> {
    let obj = Obj::new("spec", root)?;
    let spec = CampaignSpec {
        name: obj.str("name")?,
        seed: obj.u64("seed")?,
        sessions: obj.u64("sessions")?,
        shard_size: obj.u64("shard_size")?,
        governors: obj
            .arr("governors")?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("spec.governors[{i}]: expected a string"))
            })
            .collect::<Result<_, _>>()?,
        devices: weighted_mix(&obj, "devices", "soc", |path, name| match name {
            "biglittle2013" => Ok(SocModel::BigLittle2013),
            "flagship2016" => Ok(SocModel::Flagship2016),
            "midrange" => Ok(SocModel::MidRange),
            other => Err(format!("{path}: unknown device {other:?}")),
        })?,
        networks: weighted_mix(&obj, "networks", "network", |path, name| {
            if let Some(mbps) = name.strip_prefix("constant:") {
                let mbps: f64 = mbps
                    .parse()
                    .map_err(|_| format!("{path}: bad constant bandwidth {name:?}"))?;
                return Ok(NetworkChoice::Constant(mbps));
            }
            match name {
                "wifi_home" => Ok(NetworkChoice::Profile(NetworkProfile::WifiHome)),
                "lte_drive" => Ok(NetworkChoice::Profile(NetworkProfile::LteDrive)),
                "hspa_tram" => Ok(NetworkChoice::Profile(NetworkProfile::HspaTram)),
                other => Err(format!("{path}: unknown network {other:?}")),
            }
        })?,
        contents: weighted_mix(&obj, "contents", "content", |path, name| match name {
            "animation" => Ok(ContentProfile::Animation),
            "film" => Ok(ContentProfile::Film),
            "sport" => Ok(ContentProfile::Sport),
            other => Err(format!("{path}: unknown content profile {other:?}")),
        })?,
        titles: obj
            .arr("titles")?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let path = format!("spec.titles[{i}]");
                let t = Obj::new(&path, v)?;
                let title = TitleSpec {
                    bitrate_kbps: t.u32("bitrate_kbps")?,
                    width: t.u32("width")?,
                    height: t.u32("height")?,
                    duration_s: t.u64("duration_s")?,
                    fps: t.u32("fps")?,
                };
                let w = t.f64("weight")?;
                t.finish()?;
                Ok((title, w))
            })
            .collect::<Result<_, String>>()?,
        abrs: weighted_mix(&obj, "abrs", "abr", |path, name| match name {
            "fixed" => Ok(AbrChoice::Fixed),
            "rate" => Ok(AbrChoice::Rate),
            "buffer" => Ok(AbrChoice::Buffer),
            other => Err(format!("{path}: unknown abr {other:?}")),
        })?,
        trace_pool: obj.u64("trace_pool")?,
        seed_pool: obj.u64("seed_pool")?,
        arrival_span_s: obj.u64("arrival_span_s")?,
        power: decode_power(obj.required("power")?)?,
        energy_hist: decode_hist(&obj, "energy_hist")?,
        qoe_hist: decode_hist(&obj, "qoe_hist")?,
        startup_hist_ms: decode_hist(&obj, "startup_hist_ms")?,
    };
    obj.finish()?;
    Ok(spec)
}

fn decode_power(v: &Value) -> Result<DevicePowerModel, String> {
    if *v == Value::Null {
        return Ok(DevicePowerModel::none());
    }
    let obj = Obj::new("spec.power", v)?;
    let component = |key: &str| -> Result<Option<&Value>, String> {
        let v = obj.required(key)?;
        Ok(if *v == Value::Null { None } else { Some(v) })
    };
    let radio = component("radio")?
        .map(|v| {
            let o = Obj::new("spec.power.radio", v)?;
            let m = RrcRadioModel {
                idle_power_w: o.f64("idle_power_w")?,
                promo_power_w: o.f64("promo_power_w")?,
                active_power_w: o.f64("active_power_w")?,
                tail_power_w: o.f64("tail_power_w")?,
                promotion_latency: SimDuration::from_nanos(o.u64("promotion_latency_ns")?),
                tail_timer: SimDuration::from_nanos(o.u64("tail_timer_ns")?),
            };
            o.finish()?;
            Ok::<_, String>(m)
        })
        .transpose()?;
    let display = component("display")?
        .map(|v| {
            let o = Obj::new("spec.power.display", v)?;
            let m = DisplayModel {
                brightness: o.f64("brightness")?,
                base_power_w: o.f64("base_power_w")?,
                full_power_w: o.f64("full_power_w")?,
                similarity_gain: o.f64("similarity_gain")?,
            };
            o.finish()?;
            Ok::<_, String>(m)
        })
        .transpose()?;
    let decoder = component("decoder")?
        .map(|v| {
            let o = Obj::new("spec.power.decoder", v)?;
            let m = DecoderModel {
                decode_j_per_mpx: o.f64("decode_j_per_mpx")?,
                upscale_j_per_mpx: o.f64("upscale_j_per_mpx")?,
                display_width: o.u32("display_width")?,
                display_height: o.u32("display_height")?,
            };
            o.finish()?;
            Ok::<_, String>(m)
        })
        .transpose()?;
    obj.finish()?;
    Ok(DevicePowerModel {
        radio,
        display,
        decoder,
    })
}

fn decode_hist(obj: &Obj<'_>, key: &str) -> Result<(f64, f64, usize), String> {
    let items = obj.arr(key)?;
    let path = || format!("{}.{key}", obj.path);
    if items.len() != 3 {
        return Err(format!("{}: expected [lo, hi, bins]", path()));
    }
    let lo = items[0]
        .as_f64()
        .ok_or_else(|| format!("{}[0]: expected a number", path()))?;
    let hi = items[1]
        .as_f64()
        .ok_or_else(|| format!("{}[1]: expected a number", path()))?;
    let bins = items[2]
        .as_u64()
        .ok_or_else(|| format!("{}[2]: expected an integer", path()))? as usize;
    Ok((lo, hi, bins))
}

fn weighted_mix<T>(
    obj: &Obj<'_>,
    key: &str,
    item_key: &str,
    decode: impl Fn(&str, &str) -> Result<T, String>,
) -> Result<Vec<(T, f64)>, String> {
    obj.arr(key)?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let path = format!("{}.{key}[{i}]", obj.path);
            let entry = Obj::new(&path, v)?;
            let name = entry.str(item_key)?;
            let item = decode(&format!("{path}.{item_key}"), &name)?;
            let w = entry.f64("weight")?;
            entry.finish()?;
            Ok((item, w))
        })
        .collect()
}

/// A strict object reader: typed accessors with path-annotated errors,
/// and a [`Obj::finish`] pass that rejects unknown fields.
struct Obj<'a> {
    path: String,
    members: &'a [(String, Value)],
    seen: std::cell::RefCell<Vec<&'a str>>,
}

impl<'a> Obj<'a> {
    fn new(path: &str, v: &'a Value) -> Result<Self, String> {
        let members = v
            .as_obj()
            .ok_or_else(|| format!("{path}: expected an object"))?;
        Ok(Obj {
            path: path.to_owned(),
            members,
            seen: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn required(&self, key: &str) -> Result<&'a Value, String> {
        let (k, v) = self
            .members
            .iter()
            .find(|(k, _)| k == key)
            .ok_or_else(|| format!("{}.{key}: missing", self.path))?;
        self.seen.borrow_mut().push(k.as_str());
        Ok(v)
    }

    fn str(&self, key: &str) -> Result<String, String> {
        self.required(key)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("{}.{key}: expected a string", self.path))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.required(key)?
            .as_u64()
            .ok_or_else(|| format!("{}.{key}: expected a non-negative integer", self.path))
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        self.u64(key)?
            .try_into()
            .map_err(|_| format!("{}.{key}: value does not fit in u32", self.path))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.required(key)?
            .as_f64()
            .ok_or_else(|| format!("{}.{key}: expected a number", self.path))
    }

    fn arr(&self, key: &str) -> Result<&'a [Value], String> {
        self.required(key)?
            .as_arr()
            .ok_or_else(|| format!("{}.{key}: expected an array", self.path))
    }

    fn finish(&self) -> Result<(), String> {
        let seen = self.seen.borrow();
        for (k, _) in self.members {
            if !seen.contains(&k.as_str()) {
                return Err(format!("{}.{k}: unknown field", self.path));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn powered_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::global();
        spec.power = DevicePowerModel::phone_with_brightness(0.37);
        spec
    }

    #[test]
    fn smoke_and_global_round_trip_exactly() {
        for spec in [CampaignSpec::smoke(), CampaignSpec::global(), powered_spec()] {
            let json = encode_spec(&spec);
            let back = decode_spec(&json).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.fingerprint(), spec.fingerprint(), "fingerprint drift");
            // Encoding is canonical: a second round trip is a fixpoint.
            assert_eq!(encode_spec(&back), json);
        }
    }

    #[test]
    fn awkward_floats_survive() {
        let mut spec = CampaignSpec::smoke();
        spec.devices[0].1 = 0.1 + 0.2; // 0.30000000000000004
        spec.networks[0].0 = NetworkChoice::Constant(1.0 / 3.0);
        spec.energy_hist = (0.0, 1e-7, 3);
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn partial_power_models_round_trip() {
        let mut spec = CampaignSpec::smoke();
        spec.power = DevicePowerModel {
            radio: Some(RrcRadioModel::lte().with_tail_timer(SimDuration::from_millis(1500))),
            display: None,
            decoder: Some(DecoderModel::phone_1080p()),
        };
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn errors_name_the_offending_path() {
        let mut json = encode_spec(&CampaignSpec::smoke());
        json = json.replace("\"flagship2016\"", "\"quantum9000\"");
        assert!(decode_spec(&json).unwrap_err().contains("devices[0].soc"));

        let json = encode_spec(&CampaignSpec::smoke()).replace("\"seed\":42", "\"seed\":-1");
        assert!(decode_spec(&json).unwrap_err().contains("spec.seed"));

        let json = encode_spec(&CampaignSpec::smoke()).replace("\"seed\"", "\"sede\"");
        let err = decode_spec(&json).unwrap_err();
        assert!(err.contains("seed") && err.contains("missing"), "{err}");

        assert!(decode_spec("{]").unwrap_err().contains("invalid JSON"));
        assert!(decode_spec("[1,2]").unwrap_err().contains("expected an object"));
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let json = encode_spec(&CampaignSpec::smoke());
        let spiked = json.replacen('{', "{\"turbo\":true,", 1);
        let err = decode_spec(&spiked).unwrap_err();
        assert!(err.contains("turbo") && err.contains("unknown field"), "{err}");
    }
}
