//! Lightweight, optional event tracing for debugging simulations.
//!
//! A [`TraceLog`] is a bounded ring buffer of timestamped messages. Tracing
//! is disabled by default so hot paths pay only a branch; experiments enable
//! it when reconstructing timelines (e.g. figure F2's frequency timeline).

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// A single trace record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// When the record was emitted.
    pub time: SimTime,
    /// Which component emitted it (static string, e.g. `"cpu"`).
    pub component: &'static str,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.component, self.message)
    }
}

/// A bounded ring buffer of trace records.
#[derive(Clone, Debug)]
pub struct TraceLog {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceLog {
    /// Creates a disabled log with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace log needs non-zero capacity");
        TraceLog {
            entries: VecDeque::new(),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message if enabled; evicts the oldest entry when full.
    pub fn record(&mut self, time: SimTime, component: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            component,
            message: message.into(),
        });
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all entries (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(16_384)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let mut log = TraceLog::new(4);
        log.record(SimTime::ZERO, "cpu", "ignored");
        assert!(log.is_empty());
    }

    #[test]
    fn records_when_enabled() {
        let mut log = TraceLog::new(4);
        log.set_enabled(true);
        log.record(SimTime::from_secs(1), "cpu", "freq=1000");
        assert_eq!(log.len(), 1);
        let e = log.iter().next().unwrap();
        assert_eq!(e.component, "cpu");
        assert_eq!(e.message, "freq=1000");
        assert_eq!(e.to_string(), "[1.000000s] cpu: freq=1000");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = TraceLog::new(3);
        log.set_enabled(true);
        for i in 0..5 {
            log.record(SimTime::from_secs(i), "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let msgs: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new(2);
        log.set_enabled(true);
        log.record(SimTime::ZERO, "a", "1");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert!(log.is_enabled());
    }
}
