//! Regenerates experiment `f9_network_abr` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f9_network_abr")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
