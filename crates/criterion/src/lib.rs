//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! This workspace builds hermetically with no registry access, so the upstream
//! crate cannot be fetched. The shim keeps the same bench-source syntax
//! (`criterion_group!` / `criterion_main!`, `Criterion`, benchmark groups,
//! `Throughput`, `black_box`) and implements a simple but honest measurement
//! loop: a warm-up to size the batch, then fixed-iteration timed batches,
//! reporting the mean, the best batch, and derived element throughput.
//!
//! Not implemented (not used in this repo): statistical regression analysis,
//! HTML reports, parameterised benches, async benching.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(80);
/// Warm-up budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(60);

/// Units for normalising reported timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmarked body processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmarked body processes this many bytes per iteration.
    Bytes(u64),
}

/// Drives individual timing loops inside a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, calling it `self.iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_count, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            sample_count: 10,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Normalise reported timings by this per-iteration workload size.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_count, self.throughput, f);
        self
    }

    /// Finish the group (reports are printed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: find an iteration count whose batch lands near BATCH_TARGET.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher {
            iters,
            ..Bencher::default()
        };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or(per_iter);
        if warmup_start.elapsed() >= WARMUP_TARGET || b.elapsed >= BATCH_TARGET {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let per_iter_ns = per_iter.as_nanos().max(1);
    let batch_iters = (BATCH_TARGET.as_nanos() / per_iter_ns).clamp(1, u64::MAX as u128) as u64;

    // Measurement: `samples` batches of `batch_iters` iterations.
    let mut mean_ns = 0.0f64;
    let mut best_ns = f64::INFINITY;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: batch_iters,
            ..Bencher::default()
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / batch_iters as f64;
        mean_ns += ns / samples as f64;
        best_ns = best_ns.min(ns);
    }

    let mut line = format!(
        "{name:<44} time: [{} mean, {} best] ({batch_iters} iters x {samples})",
        fmt_ns(mean_ns),
        fmt_ns(best_ns),
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (mean_ns / 1e9);
        line.push_str(&format!("  thrpt: {} {unit}", fmt_si(rate)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Bundle bench functions into a named group runner (shim for upstream macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups (shim for upstream macro).
///
/// Ignores harness CLI arguments (`--bench`, filters) passed by `cargo bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
