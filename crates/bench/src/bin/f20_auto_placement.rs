//! Regenerates experiment `f20_auto_placement` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f20_auto_placement")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
