//! Fixed-bin histograms for distribution figures.

use std::fmt;

/// A linear-bin histogram over `[lo, hi)` with overflow/underflow counters.
///
/// ```
/// use eavs_metrics::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [0.5, 1.5, 1.7, 9.9, -3.0, 42.0] {
///     h.record(x);
/// }
/// assert_eq!(h.bin_count(0), 3); // [0,2) holds 0.5, 1.5, 1.7
/// assert_eq!(h.bin_count(4), 1); // [8,10) holds 9.9
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            // Floating rounding can land exactly on bins.len() for x just
            // below hi; clamp.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Rebuilds a histogram from its raw parts (checkpoint decoding).
    ///
    /// # Panics
    ///
    /// Panics on an empty range or zero bins, like [`Histogram::new`].
    pub fn from_parts(lo: f64, hi: f64, bins: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins,
            underflow,
            overflow,
        }
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of in-range observations falling in bin `i`.
    pub fn bin_fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            0.0
        } else {
            self.bins[i] as f64 / in_range as f64
        }
    }

    /// Iterates `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| {
            let (lo, hi) = self.bin_edges(i);
            (lo, hi, self.bins[i])
        })
    }

    /// `true` when `other` has the identical range and bin count, i.e. the
    /// two histograms can be merged.
    pub fn same_shape(&self, other: &Histogram) -> bool {
        self.lo.to_bits() == other.lo.to_bits()
            && self.hi.to_bits() == other.hi.to_bits()
            && self.bins.len() == other.bins.len()
    }

    /// Merges `other` into `self` by summing bin, underflow and overflow
    /// counts. Counts are integers, so merging is exactly associative and
    /// commutative — per-shard histograms fold to the same result in any
    /// order, which is what makes sharded campaign output deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.same_shape(other),
            "merging histograms of different shape: [{}, {}) x{} vs [{}, {}) x{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += *b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) over *in-range* observations,
    /// linearly interpolated within the containing bin. Returns `None`
    /// when no in-range observations have been recorded.
    ///
    /// Resolution is one bin width, but the estimate depends only on the
    /// bin counts — so quantiles of merged histograms are identical no
    /// matter how the observations were sharded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside [0, 1].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = q * in_range as f64;
        let mut cum = 0u64;
        for (i, &count) in self.bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = cum + count;
            if next as f64 >= target {
                let (lo, hi) = self.bin_edges(i);
                let within = ((target - cum as f64) / count as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * within);
            }
            cum = next;
        }
        // Rounding pushed the target past the last occupied bin.
        let last = self.bins.iter().rposition(|&c| c > 0).unwrap_or(0);
        Some(self.bin_edges(last).1)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, count) in self.iter() {
            let width = (count * 40 / max) as usize;
            writeln!(
                f,
                "[{lo:>10.2}, {hi:>10.2}) {count:>8} {}",
                "#".repeat(width)
            )?;
        }
        Ok(())
    }
}

/// A counter over labeled categories (e.g. events per governor decision).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    counts: Vec<(String, u64)>,
}

impl Counter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Counter { counts: Vec::new() }
    }

    /// Increments `label` by one.
    pub fn incr(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Adds `n` to `label`.
    pub fn add(&mut self, label: &str, n: u64) {
        if let Some(entry) = self.counts.iter_mut().find(|(l, _)| l == label) {
            entry.1 += n;
        } else {
            self.counts.push((label.to_owned(), n));
        }
    }

    /// The count for `label` (0 if never seen).
    pub fn count(&self, label: &str) -> u64 {
        self.counts
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, c)| *c)
    }

    /// Total of all counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// Iterates `(label, count)` in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(l, c)| (l.as_str(), *c))
    }

    /// Merges `other` into `self` by summing per-label counts. The counts
    /// are order-independent; the *iteration order* keeps `self`'s labels
    /// first, then `other`'s unseen labels in their first-seen order.
    pub fn merge(&mut self, other: &Counter) {
        for (label, n) in other.iter() {
            self.add(label, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range_without_gaps() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..1000 {
            h.record(i as f64 / 1000.0);
        }
        assert_eq!(h.total(), 1000);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 100, "bin {i}");
        }
    }

    #[test]
    fn edge_values() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0); // first bin
        h.record(10.0); // overflow (half-open)
        h.record(9.999_999_999); // last bin
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn bin_edges_and_fraction() {
        let mut h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 2.5));
        assert_eq!(h.bin_edges(3), (3.5, 4.0));
        h.record(2.1);
        h.record(2.2);
        h.record(3.9);
        assert!((h.bin_fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn inverted_range_panics() {
        Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn display_renders_rows() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let out = h.to_string();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains('#'));
    }

    #[test]
    fn merge_equals_single_recorder() {
        let data: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.173).fract() * 12.0 - 1.0)
            .collect();
        let mut whole = Histogram::new(0.0, 10.0, 8);
        for &x in &data {
            whole.record(x);
        }
        let mut a = Histogram::new(0.0, 10.0, 8);
        let mut b = Histogram::new(0.0, 10.0, 8);
        for (i, &x) in data.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        // Merge in both orders: identical to recording everything in one go.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.3);
        let before = h.clone();
        h.merge(&Histogram::new(0.0, 1.0, 4));
        assert_eq!(h, before);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn merge_rejects_shape_mismatch() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.merge(&Histogram::new(0.0, 1.0, 5));
    }

    #[test]
    fn quantile_interpolates_within_bins() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(100.0));
        // Empty histograms have no quantiles.
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
        // Out-of-range observations don't shift in-range quantiles.
        let mut spiky = Histogram::new(0.0, 10.0, 10);
        spiky.record(5.0);
        spiky.record(-100.0);
        spiky.record(1e9);
        let q = spiky.quantile(0.5).unwrap();
        assert!((5.0..6.0).contains(&q), "median {q} should sit in [5,6)");
    }

    #[test]
    fn counter_merge_sums_labels() {
        let mut a = Counter::new();
        a.add("x", 2);
        a.add("y", 1);
        let mut b = Counter::new();
        b.add("y", 4);
        b.add("z", 3);
        a.merge(&b);
        assert_eq!(a.count("x"), 2);
        assert_eq!(a.count("y"), 5);
        assert_eq!(a.count("z"), 3);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr("a");
        c.incr("b");
        c.add("a", 3);
        assert_eq!(c.count("a"), 4);
        assert_eq!(c.count("b"), 1);
        assert_eq!(c.count("missing"), 0);
        assert_eq!(c.total(), 5);
        let labels: Vec<&str> = c.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["a", "b"], "first-seen order preserved");
    }
}
