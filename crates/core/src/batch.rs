//! Batched struct-of-arrays session execution.
//!
//! [`run_batch`] advances up to `width` sessions in lock-step through the
//! pure step kernel ([`crate::session::SessionState`]). The hot per-lane
//! state — current time, OPP index, queue depths, deadline slack — is
//! mirrored into struct-of-arrays (`ShardHot`) after every stride, so
//! the lane scheduler touches a few cache lines instead of `width` full
//! session worlds. Each lane owns a recycled
//! [`crate::session::SessionScratch`]: when a session finishes, the next
//! builder inherits its buffers, driving steady-state allocations per
//! session toward zero.
//!
//! Sessions are fully independent (no cross-lane state), so the batch
//! runner produces reports byte-identical to scalar execution, in input
//! order, for any width — including under fault plans. The lock-step
//! schedule (always advance the lane with the smallest simulated time,
//! ties to the lowest lane index) is deterministic and exists purely for
//! cache locality; correctness never depends on it.

use crate::report::SessionReport;
use crate::session::{SessionBuilder, SessionScratch, SessionState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default lane count when `EAVS_BATCH=1` asks for batching without a
/// width. Sixteen worlds fit comfortably in L2 on anything modern while
/// amortizing the scheduler scan.
pub const DEFAULT_WIDTH: usize = 16;

/// Events each resident lane processes before the scheduler re-picks a
/// lane. Long enough to amortize the hot-state refresh, short enough to
/// keep lanes loosely aligned in simulated time.
const STRIDE: usize = 128;

static BATCHED_SESSIONS: AtomicU64 = AtomicU64::new(0);
static BATCH_STEPS: AtomicU64 = AtomicU64::new(0);
static BATCH_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of the batch runner.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct BatchStats {
    /// Sessions completed through [`run_batch`] since process start.
    pub sessions: u64,
    /// Kernel steps (events) executed by batch runners.
    pub steps: u64,
    /// Wall nanoseconds spent inside [`run_batch`].
    pub wall_ns: u64,
}

/// Snapshot of the process-wide batch counters.
pub fn batch_stats() -> BatchStats {
    BatchStats {
        sessions: BATCHED_SESSIONS.load(Ordering::Relaxed),
        steps: BATCH_STEPS.load(Ordering::Relaxed),
        wall_ns: BATCH_WALL_NS.load(Ordering::Relaxed),
    }
}

/// Hot per-lane state in struct-of-arrays layout. One `Vec` per field
/// keeps the scheduler's scan over `now_ns` contiguous; the remaining
/// arrays ride along for observability and future scheduling policies.
struct ShardHot {
    now_ns: Vec<u64>,
    opp_index: Vec<u16>,
    decoded_depth: Vec<u16>,
    queue_depth: Vec<u16>,
    slack_ns: Vec<u64>,
    active: Vec<bool>,
    /// Governor lane class of the resident session — lanes are admitted
    /// kind-major so equal classes sit adjacent and one governor's
    /// decision kernel stays hot across consecutive scheduler picks.
    gov_kind: Vec<u8>,
}

impl ShardHot {
    fn new(width: usize) -> Self {
        ShardHot {
            now_ns: vec![0; width],
            opp_index: vec![0; width],
            decoded_depth: vec![0; width],
            queue_depth: vec![0; width],
            slack_ns: vec![0; width],
            active: vec![false; width],
            gov_kind: vec![u8::MAX; width],
        }
    }

    fn refresh(&mut self, lane: usize, st: &SessionState) {
        let hot = st.hot();
        self.now_ns[lane] = hot.now.as_nanos();
        self.opp_index[lane] = hot.opp_index as u16;
        self.decoded_depth[lane] = hot.decoded_depth.min(u16::MAX as usize) as u16;
        self.queue_depth[lane] = hot.queue_depth.min(u16::MAX as usize) as u16;
        self.slack_ns[lane] = hot.slack.as_nanos();
    }

    /// The active lane with the smallest simulated time (ties to the
    /// lowest lane index), or `None` when every lane is drained.
    fn earliest(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for lane in 0..self.active.len() {
            if !self.active[lane] {
                continue;
            }
            match best {
                Some(b) if self.now_ns[b] <= self.now_ns[lane] => {}
                _ => best = Some(lane),
            }
        }
        best
    }
}

/// One resident lane: a running session plus the slot its report goes to.
struct Lane {
    state: SessionState,
    slot: usize,
}

/// Runs every builder to completion, at most `width` resident at a time,
/// and returns the reports in input order. `width` is clamped to at
/// least 1; `width == 1` degenerates to scalar execution through the
/// same kernel.
///
/// Admission is *kind-major*: input slots are stably grouped by governor
/// lane class before lanes fill, so sessions sharing a decision kernel
/// are resident together and the dispatcher's `match` arm stays
/// branch-predicted across consecutive scheduler picks. Reports still
/// come back in input order — sessions are independent, so admission
/// order is a pure locality decision.
pub fn run_batch(
    builders: impl IntoIterator<Item = SessionBuilder>,
    width: usize,
) -> Vec<SessionReport> {
    let start = Instant::now();
    let width = width.max(1);
    let mut queue: Vec<(usize, SessionBuilder)> = builders.into_iter().enumerate().collect();
    queue.sort_by_key(|(slot, b)| (b.governor_lane_class(), *slot));
    let total = queue.len();
    let mut pending = queue.into_iter();
    let mut results: Vec<Option<SessionReport>> = Vec::new();
    results.resize_with(total, || None);
    let mut scratches: Vec<SessionScratch> =
        (0..width).map(|_| SessionScratch::default()).collect();
    let mut lanes: Vec<Option<Lane>> = (0..width).map(|_| None).collect();
    let mut hot = ShardHot::new(width);
    let mut steps: u64 = 0;
    let mut finished: u64 = 0;

    let mut load = |lane: usize,
                    lanes: &mut Vec<Option<Lane>>,
                    hot: &mut ShardHot,
                    _results: &mut Vec<Option<SessionReport>>,
                    scratches: &mut Vec<SessionScratch>| {
        if let Some((slot, builder)) = pending.next() {
            let class = builder.governor_lane_class();
            let state = SessionState::with_scratch(builder, &mut scratches[lane]);
            hot.refresh(lane, &state);
            hot.active[lane] = true;
            hot.gov_kind[lane] = class;
            lanes[lane] = Some(Lane { state, slot });
        } else {
            hot.active[lane] = false;
            hot.gov_kind[lane] = u8::MAX;
            lanes[lane] = None;
        }
    };

    for lane in 0..width {
        load(lane, &mut lanes, &mut hot, &mut results, &mut scratches);
    }

    while let Some(lane) = hot.earliest() {
        let resident = lanes[lane].as_mut().expect("active lane is resident");
        let mut done = false;
        for _ in 0..STRIDE {
            steps += 1;
            if !resident.state.step() {
                done = true;
                break;
            }
        }
        if done {
            let resident = lanes[lane].take().expect("resident");
            let report = resident.state.finish_into(&mut scratches[lane]);
            results[resident.slot] = Some(report);
            finished += 1;
            load(lane, &mut lanes, &mut hot, &mut results, &mut scratches);
        } else {
            let resident = lanes[lane].as_ref().expect("resident");
            hot.refresh(lane, &resident.state);
        }
    }

    BATCHED_SESSIONS.fetch_add(finished, Ordering::Relaxed);
    BATCH_STEPS.fetch_add(steps, Ordering::Relaxed);
    BATCH_WALL_NS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{EavsConfig, EavsGovernor};
    use crate::predictor::Hybrid;
    use crate::session::{GovernorChoice, StreamingSession};
    use eavs_faults::{DecodeSpike, FaultPlan, SegmentFault};
    use eavs_sim::time::SimDuration;
    use eavs_video::manifest::Manifest;
    use std::sync::Arc;

    fn builder(seed: u64) -> SessionBuilder {
        let gov = GovernorChoice::Eavs(EavsGovernor::new(
            Box::new(Hybrid::default()),
            EavsConfig::default(),
        ));
        StreamingSession::builder(gov)
            .manifest(Arc::new(Manifest::single(
                3_000,
                1280,
                720,
                SimDuration::from_secs(6),
                30,
            )))
            .seed(seed)
    }

    fn faulted(seed: u64) -> SessionBuilder {
        let plan = FaultPlan {
            corruption: vec![SegmentFault::once(1)],
            decode_spikes: vec![DecodeSpike {
                frame: 40,
                factor: 3.0,
            }],
            ..FaultPlan::default()
        };
        builder(seed).faults(plan)
    }

    #[test]
    fn batch_matches_scalar_byte_for_byte_in_input_order() {
        let scalar: Vec<String> = (0..6).map(|s| format!("{:?}", builder(s).run())).collect();
        for width in [1usize, 3, 8, 64] {
            let batched = run_batch((0..6).map(builder), width);
            assert_eq!(batched.len(), 6);
            for (i, report) in batched.iter().enumerate() {
                assert_eq!(
                    format!("{report:?}"),
                    scalar[i],
                    "width {width}, session {i} diverged from scalar"
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_under_faults() {
        let scalar: Vec<String> = (0..4).map(|s| format!("{:?}", faulted(s).run())).collect();
        let batched = run_batch((0..4).map(faulted), 2);
        for (i, report) in batched.iter().enumerate() {
            assert_eq!(format!("{report:?}"), scalar[i], "faulted session {i}");
        }
    }

    #[test]
    fn batch_matches_scalar_under_power_model() {
        // Power accounting is post-hoc, so lock-step lane scheduling must
        // be invisible in the power counters too — and they must be
        // non-trivial here, or the equality proves nothing.
        let powered = |seed: u64| builder(seed).power(eavs_power::DevicePowerModel::phone());
        let scalar: Vec<String> = (0..4).map(|s| format!("{:?}", powered(s).run())).collect();
        let batched = run_batch((0..4).map(powered), 2);
        for (i, report) in batched.iter().enumerate() {
            assert!(report.power.total_j() > 0.0, "powered session {i}");
            assert_eq!(format!("{report:?}"), scalar[i], "powered session {i}");
        }
    }

    #[test]
    fn kind_major_admission_keeps_input_order_byte_identical() {
        // Interleave governor kinds so admission grouping actually
        // reorders lane fill; reports must still match scalar, in input
        // order.
        let names = [
            "ondemand",
            "eavs",
            "performance",
            "schedutil",
            "eavs",
            "ondemand",
        ];
        let build = |i: usize| {
            let gov = if names[i] == "eavs" {
                GovernorChoice::Eavs(EavsGovernor::new(
                    Box::new(Hybrid::default()),
                    EavsConfig::default(),
                ))
            } else {
                GovernorChoice::kind_by_name(names[i]).unwrap()
            };
            StreamingSession::builder(gov)
                .manifest(Arc::new(Manifest::single(
                    3_000,
                    1280,
                    720,
                    SimDuration::from_secs(6),
                    30,
                )))
                .seed(i as u64)
        };
        let scalar: Vec<String> = (0..names.len())
            .map(|i| format!("{:?}", build(i).run()))
            .collect();
        for width in [2usize, 4, 16] {
            let batched = run_batch((0..names.len()).map(build), width);
            for (i, report) in batched.iter().enumerate() {
                assert_eq!(
                    format!("{report:?}"),
                    scalar[i],
                    "width {width}, session {i} ({}) diverged",
                    names[i]
                );
            }
        }
    }

    #[test]
    fn batch_counts_sessions_and_steps() {
        let before = batch_stats();
        let out = run_batch((0..3).map(builder), 2);
        assert_eq!(out.len(), 3);
        let after = batch_stats();
        assert_eq!(after.sessions - before.sessions, 3);
        assert!(after.steps > before.steps);
    }
}
