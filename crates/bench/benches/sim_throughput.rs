//! Simulator kernel throughput: events per second through the engine and
//! raw queue operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eavs_sim::prelude::*;

struct PingPong {
    remaining: u64,
}

impl World for PingPong {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("event_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(PingPong { remaining: N });
            sim.scheduler().schedule_at(SimTime::ZERO, ());
            sim.run();
            black_box(sim.now())
        })
    });

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
