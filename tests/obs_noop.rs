//! The observability no-op guarantee, mirroring `faults_noop.rs`: a
//! session with a [`NullSink`] trace attached must be invisible — same
//! report field for field, same fingerprint, same event stream — across
//! governors and configurations. This is what lets the tracing wiring
//! ride in every build without perturbing a single committed figure.

use eavs::obs::{shared, NullSink, RingSink, SharedSink};
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::predictor_by_name;
use eavs::scaling::report::SessionReport;
use eavs::scaling::session::{GovernorChoice, SessionBuilder, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::by_name;
use proptest::prelude::*;

fn governor(name: &str) -> GovernorChoice {
    if name == "eavs" {
        GovernorChoice::Eavs(EavsGovernor::new(
            predictor_by_name("hybrid").unwrap(),
            EavsConfig::default(),
        ))
    } else {
        GovernorChoice::Baseline(by_name(name).unwrap())
    }
}

fn base(gov: &str, seed: u64) -> SessionBuilder {
    StreamingSession::builder(governor(gov))
        .manifest(Manifest::single(
            3_000,
            1280,
            720,
            SimDuration::from_secs(8),
            30,
        ))
        .content(ContentProfile::Sport)
        .seed(seed)
}

fn null_sink() -> SharedSink {
    shared(NullSink)
}

fn assert_reports_identical(plain: &SessionReport, traced: &SessionReport, label: &str) {
    // Debug covers every field, including the energy floats. Neither
    // side carries a profile, so the comparison is host-independent.
    assert!(plain.profile.is_none() && traced.profile.is_none());
    assert_eq!(
        format!("{plain:?}"),
        format!("{traced:?}"),
        "{label}: a NullSink trace changed the report"
    );
}

#[test]
fn null_sink_is_invisible_across_governors() {
    for gov in ["performance", "powersave", "ondemand", "schedutil", "eavs"] {
        let plain = base(gov, 11).run();
        let traced = base(gov, 11).trace(null_sink()).run();
        assert_reports_identical(&plain, &traced, gov);
    }
}

#[test]
fn observers_never_enter_the_fingerprint() {
    // Observers are deliberately not hashed (a trace must be able to
    // replay a cached workload's exact timeline), so the fingerprint is
    // unchanged — and the cache layer is what refuses to serve observed
    // builders from memo (covered in eavs-bench).
    let plain = base("eavs", 23).fingerprint().expect("cacheable");
    let traced = base("eavs", 23)
        .trace(null_sink())
        .fingerprint()
        .expect("cacheable");
    assert_eq!(plain, traced);
    assert!(base("eavs", 23).trace(null_sink()).has_observer());
    assert!(base("eavs", 23).profile(true).has_observer());
    assert!(!base("eavs", 23).has_observer());
}

#[test]
fn null_sink_processes_the_same_events() {
    // Stronger than report equality alone: the simulator must schedule
    // the exact same event stream. A RingSink run rides along to prove
    // a *recording* sink is behaviorally inert too.
    let plain = base("eavs", 31).record_series(true).run();
    let nulled = base("eavs", 31)
        .record_series(true)
        .trace(null_sink())
        .run();
    let ringed = base("eavs", 31)
        .record_series(true)
        .trace(shared(RingSink::new(65_536)))
        .run();
    assert_eq!(plain.events_processed, nulled.events_processed);
    assert_eq!(plain.freq_series, nulled.freq_series);
    assert_eq!(plain.buffer_series, nulled.buffer_series);
    assert_eq!(plain.events_processed, ringed.events_processed);
    assert_eq!(plain.freq_series, ringed.freq_series);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any governor/content/seed draw, attaching a NullSink leaves
    /// the report byte-identical (Debug covers every field).
    #[test]
    fn null_sink_is_invisible_for_any_draw(
        gov_pick in 0u8..5,
        content_pick in 0u8..3,
        seed in 1u64..400,
    ) {
        let gov = ["performance", "powersave", "ondemand", "schedutil", "eavs"]
            [gov_pick as usize];
        let content = ContentProfile::ALL[content_pick as usize];
        let mk = || base(gov, seed).content(content);
        let plain = mk().run();
        let traced = mk().trace(null_sink()).run();
        prop_assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    }
}
