//! Adaptive streaming over a variable LTE link.
//!
//! Streams a 2-minute title with a full DASH ladder over a Markov-
//! modulated LTE drive trace, using buffer-based ABR, and compares the
//! interactive baseline against EAVS on *whole-device-relevant* energy
//! (CPU + radio) and QoE — the scenario of figure F9.
//!
//! ```text
//! cargo run --release --example abr_streaming
//! ```

use eavs::metrics::table::Table;
use eavs::net::abr::BufferBasedAbr;
use eavs::net::radio::RadioModel;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::tracegen::net_gen::NetworkProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::Interactive;

fn main() {
    let duration = SimDuration::from_secs(120);
    let network = NetworkProfile::LteDrive.generate(duration * 3, 2024);

    let mut table = Table::new(&[
        "governor",
        "cpu (J)",
        "radio (J)",
        "total (J)",
        "mean kbps",
        "switches",
        "rebuffers",
        "qoe score",
    ]);
    table.set_title("120 s adaptive 30fps stream over LTE drive trace (buffer-based ABR)");

    for (label, gov) in [
        (
            "interactive",
            GovernorChoice::Baseline(Box::new(Interactive::new()) as Box<_>),
        ),
        (
            "eavs",
            GovernorChoice::Eavs(EavsGovernor::new(
                Box::new(Hybrid::default()),
                EavsConfig::default(),
            )),
        ),
    ] {
        let report = StreamingSession::builder(gov)
            .manifest(Manifest::standard_ladder(duration, 30))
            .content(ContentProfile::Film)
            .network(network.clone())
            .radio(RadioModel::lte())
            .abr(Box::new(BufferBasedAbr::standard()))
            .seed(7)
            .run();
        table.row(&[
            label,
            &format!("{:.2}", report.cpu_joules()),
            &format!("{:.2}", report.radio.energy_j),
            &format!("{:.2}", report.total_joules()),
            &format!("{:.0}", report.qoe.mean_bitrate_kbps),
            &report.qoe.bitrate_switches.to_string(),
            &report.qoe.rebuffer_events.to_string(),
            &format!("{:.2}", report.qoe.score()),
        ]);
    }
    println!("{}", table.render());
    println!("CPU savings are additive on top of radio energy: the governor");
    println!("does not disturb ABR decisions (same bitrate/switch columns).");
}
