//! Machine-readable performance report for the simulator.
//!
//! Measures the headline numbers and writes them as `BENCH_sim.json`
//! under the results directory (also printed to stdout):
//!
//! * `events_per_sec`   — raw engine throughput on a 100k self-rescheduling
//!   event chain (same kernel as the `event_chain_100k` criterion bench).
//! * `sessions_per_sec` — full 1080p30 streaming sessions simulated per
//!   wall-clock second, fanned out through the shared work-stealing pool.
//!   Sessions here use distinct seeds and bypass the session cache so the
//!   number reflects simulation, not memoization. On a one-core host the
//!   pool number is scheduler-sensitive; `serial_sessions_per_sec` is the
//!   same workload run serially on one thread — the stable baseline the
//!   kernel comparison and the CI perf floor use.
//! * `allocations_per_session` — heap allocations per simulated session,
//!   counted by the binary's global allocator during the same run.
//! * `run_all_wall_s` / `run_all_warm_wall_s` — wall-clock seconds to
//!   regenerate the experiment suite cold (empty session cache) and again
//!   warm (every session memoized). A fixed subset runs in `--smoke` mode
//!   so CI stays under ~10 s.
//! * `session_cache` / `segment_cache` / `trace_cache` — hit/miss counters
//!   of the content-addressed caches after both passes.
//! * `fleet` — campaign throughput through the pooled, cached shard
//!   runner: session-runs/sec, the campaign's own cache hit rate, and the
//!   peak per-shard resident footprint (the O(shards) memory bound).
//! * `daemon` — the same fresh-seed campaign served end-to-end through a
//!   resident `eavsd` (HTTP submit, poll, result) vs run in-process, in
//!   session-runs/sec — the control-plane overhead of the fleet service.
//! * `prior` — fleet-prior training cost and benefit: wall-clock to
//!   train the 48-session clip-campaign prior, its catalog footprint,
//!   and the early-window MAPE cold vs warmed on the headline stream
//!   (the F30 claim as trendable numbers).
//! * `power` — whole-device energy counters of one phone-model LTE
//!   session (the F28 probe workload): per-component joules, RRC
//!   promotions, and the wall-clock cost of the powered run. Accounting
//!   is post-hoc, so this also keeps an eye on its overhead.
//! * `governor_dispatch` — ns per baseline-governor decision through the
//!   dyn trait object, the devirtualized enum kernel, and the vectorized
//!   LUT column, at widths 1/8/64 (same workload as the
//!   `governor_dispatch` criterion bench).
//!
//! `--smoke` writes `BENCH_sim.smoke.json` instead, so a quick CI pass
//! never clobbers the full-mode report.
//!
//! `--profile` additionally runs one profiled session and embeds its
//! per-phase (download/decode/display/governor) simulated-time and
//! wall-time breakdown as a `"profile"` object.
//!
//! `--budget-s N` enforces a wall-clock budget *after* the report is
//! written: if the whole run took longer than N seconds the process
//! exits 1. CI uses this instead of wrapping the command in `timeout`,
//! which could kill the process mid-write and leave a truncated report.
//!
//! `--min-kernel-speedup X` is the CI perf floor: after the report is
//! written, the batched kernel's sessions/sec is compared against a
//! dedicated *serial* scalar run of the same sessions, and the process
//! exits 1 if the speedup falls below X.
//!
//! Usage: `bench_report [--smoke] [--profile] [--budget-s N]
//! [--min-kernel-speedup X]`. `EAVS_JOBS` sizes the pool as usual.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use eavs_bench::dispatch;
use eavs_bench::harness::{self, governor, manifest_1080p30, SEED};
use eavs_core::session::StreamingSession;
use eavs_sim::prelude::*;

/// System allocator wrapper that counts allocation calls, so the report
/// can state allocations-per-session for the hot path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct PingPong {
    remaining: u64,
}

impl World for PingPong {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

/// Events per second through the full Simulation/Scheduler kernel.
fn measure_events_per_sec(chain_len: u64, repeats: u32) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..repeats {
        let started = Instant::now();
        let mut sim = Simulation::new(PingPong {
            remaining: chain_len,
        });
        sim.scheduler().schedule_at(SimTime::ZERO, ());
        sim.run();
        std::hint::black_box(sim.now());
        best = best.min(started.elapsed().as_secs_f64());
    }
    // +1 for the kick-off event.
    (chain_len + 1) as f64 / best
}

/// Complete streaming sessions per second, run through the shared pool.
/// Deliberately uncached (distinct seeds, direct `.run()`) so it measures
/// simulation throughput; also returns allocations per session.
fn measure_sessions_per_sec(sessions: usize, secs_each: u64) -> (f64, f64) {
    let manifest = std::sync::Arc::new(manifest_1080p30(secs_each));
    // Pre-generate the shared segments so the allocation count reflects
    // the session hot path, not one-time trace generation.
    {
        let warmup = StreamingSession::builder(governor("eavs"))
            .manifest(std::sync::Arc::clone(&manifest))
            .seed(SEED)
            .run();
        std::hint::black_box(warmup.events_processed);
    }
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let started = Instant::now();
    let reports = harness::run_parallel_labeled(
        (0..sessions)
            .map(|i| {
                let manifest = std::sync::Arc::clone(&manifest);
                let job = move || {
                    StreamingSession::builder(governor("eavs"))
                        .manifest(manifest)
                        .seed(SEED + i as u64)
                        .run()
                };
                (format!("bench session {i}"), job)
            })
            .collect(),
    );
    let elapsed = started.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(reports.len(), sessions);
    (sessions as f64 / elapsed, allocs as f64 / sessions as f64)
}

/// Complete streaming sessions per second through the batched SoA
/// kernel ([`eavs_core::run_batch`]), on exactly the workload (and
/// seeds) [`measure_sessions_per_sec`] just ran — segment/trace
/// generation is already memoized, so both numbers isolate session
/// simulation. Width is capped at a quarter of the session count so
/// every lane recycles its scratch arena a few times, as it would in a
/// real sweep.
fn measure_kernel_sessions_per_sec(sessions: usize, secs_each: u64) -> (f64, f64) {
    let manifest = std::sync::Arc::new(manifest_1080p30(secs_each));
    let width = (sessions / 4).clamp(1, eavs_core::DEFAULT_WIDTH);
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let started = Instant::now();
    let reports = eavs_core::run_batch(
        (0..sessions).map(|i| {
            StreamingSession::builder(governor("eavs"))
                .manifest(std::sync::Arc::clone(&manifest))
                .seed(SEED + i as u64)
        }),
        width,
    );
    let elapsed = started.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(reports.len(), sessions);
    std::hint::black_box(&reports);
    (sessions as f64 / elapsed, allocs as f64 / sessions as f64)
}

/// Wall-clock to regenerate experiments (all of them, or a smoke subset).
fn measure_run_all(smoke: bool) -> (f64, usize) {
    // f12 runs real sessions, so even the smoke report exercises (and
    // reports on) the session cache across the cold/warm passes.
    const SMOKE_IDS: &[&str] = &[
        "t1_opp_table",
        "f1_power_curve",
        "f3_workload_variability",
        "f12_residency",
    ];
    let jobs: Vec<_> = eavs_bench::all_experiments()
        .into_iter()
        .filter(|(id, _)| !smoke || SMOKE_IDS.contains(id))
        .map(|(id, f)| {
            let job = move || {
                let table = f();
                std::hint::black_box(table.to_csv().len())
            };
            (format!("bench_report {id}"), job)
        })
        .collect();
    let count = jobs.len();
    let started = Instant::now();
    harness::run_parallel_labeled(jobs);
    (started.elapsed().as_secs_f64(), count)
}

/// Fleet campaign stats through the pooled, cached runner: the smoke
/// campaign as-is in `--smoke` mode, scaled to 1 000 sessions in full
/// mode. Returns (session-runs/sec, campaign cache hit rate, outcome).
fn measure_fleet(smoke: bool) -> (f64, f64, eavs_fleet::CampaignOutcome) {
    let mut spec = eavs_fleet::CampaignSpec::smoke();
    // `eavs-panic` differs from `eavs` only by panic-recovery knobs,
    // which sit outside the replay prefix — every draw therefore gains
    // a timeline-replay sibling, so the benchmark exercises (and its
    // counters witness) the steady-state replay path.
    spec.governors.push("eavs-panic".to_owned());
    if !smoke {
        spec.name = "bench-report-fleet".to_owned();
        spec.sessions = 1_000;
        spec.shard_size = 50;
    }
    let before = eavs_bench::cache::stats();
    let outcome = eavs_bench::fleet::run_campaign(&spec, &eavs_fleet::RunOptions::default())
        .expect("fleet bench spec is valid");
    let after = eavs_bench::cache::stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    (
        outcome.session_runs as f64 / outcome.wall_s.max(1e-9),
        hit_rate,
        outcome,
    )
}

/// Control-plane overhead of the resident daemon: one fresh-seed
/// campaign served end-to-end over `eavsd`'s HTTP API (submit, poll,
/// result fetch) and a second, differently-seeded one run in-process —
/// session-runs/sec each. The seeds are distinct from each other and
/// from every other measurement in this report, so neither number is
/// inflated by session-cache hits the other one (or `measure_fleet`)
/// paid for. Returns (http runs/sec, in-process runs/sec, runs).
fn measure_daemon(smoke: bool) -> (f64, f64, u64) {
    let sessions = if smoke { 100 } else { 1_000 };
    let spec_with = |name: &str, seed: u64| {
        let mut spec = eavs_fleet::CampaignSpec::smoke();
        spec.name = name.to_owned();
        spec.seed = seed;
        spec.sessions = sessions;
        spec
    };

    let state = std::env::temp_dir().join(format!("eavsd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let daemon = eavs_daemon::Daemon::start(
        eavs_daemon::DaemonOptions::new(state.clone()),
        std::sync::Arc::new(eavs_bench::fleet::pooled_runner),
    )
    .expect("daemon start");
    let addr = daemon.addr();
    let spec = spec_with("bench-daemon-http", 0xDAE0);
    let id = eavs_daemon::registry::campaign_id(&spec);
    let body = eavs_daemon::codec::encode_spec(&spec);
    let started = Instant::now();
    let (status, resp) =
        eavs_daemon::http::client::request_text(&addr, "POST", "/campaigns", &body)
            .expect("daemon submit");
    assert_eq!(status, 200, "daemon submit: {resp}");
    loop {
        let (_, progress) = eavs_daemon::http::client::request_text(
            &addr,
            "GET",
            &format!("/campaigns/{id}"),
            "",
        )
        .expect("daemon poll");
        if progress.contains("\"phase\":\"complete\"") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let (status, _) = eavs_daemon::http::client::request_text(
        &addr,
        "GET",
        &format!("/campaigns/{id}/result"),
        "",
    )
    .expect("daemon result");
    assert_eq!(status, 200);
    let http_wall_s = started.elapsed().as_secs_f64();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);

    let spec = spec_with("bench-daemon-direct", 0xDAE1);
    let started = Instant::now();
    let outcome = eavs_bench::fleet::run_campaign(&spec, &eavs_fleet::RunOptions::default())
        .expect("daemon bench spec is valid");
    let direct_wall_s = started.elapsed().as_secs_f64();
    let runs = outcome.session_runs;
    (
        runs as f64 / http_wall_s.max(1e-9),
        runs as f64 / direct_wall_s.max(1e-9),
        runs,
    )
}

/// Single-threaded scalar reference: the same sessions and seeds as
/// [`measure_kernel_sessions_per_sec`], run serially through the
/// per-session dispatcher. The pool-based [`measure_sessions_per_sec`]
/// number depends on how the OS interleaves the worker thread with the
/// helping caller (on a one-core box the split is scheduler luck and
/// the number swings 2-3x run to run), so this serial figure is the
/// stable single-thread baseline the kernel floor compares against. It
/// also pre-warms every seed's bandwidth trace for the kernel run that
/// follows, keeping one-time trace generation out of its timed region.
fn measure_scalar_reference(sessions: usize, secs_each: u64) -> f64 {
    let manifest = std::sync::Arc::new(manifest_1080p30(secs_each));
    let started = Instant::now();
    for i in 0..sessions {
        let report = StreamingSession::builder(governor("eavs"))
            .manifest(std::sync::Arc::clone(&manifest))
            .seed(SEED + i as u64)
            .run();
        std::hint::black_box(report.events_processed);
    }
    sessions as f64 / started.elapsed().as_secs_f64()
}

/// Fleet-prior block: wall-clock to train the 48-session clip-campaign
/// prior, the store's catalog footprint, and the early-window accuracy
/// gain it buys on the headline film stream (the F30 claim, as numbers
/// the CI trend can watch). Returns
/// (train wall s, catalog entries, trained frames, cold early MAPE,
/// warm early MAPE).
fn measure_prior() -> (f64, usize, u64, f64, f64) {
    use eavs_bench::prior as fp;
    let started = Instant::now();
    let store = fp::trained_store(SEED);
    let train_wall_s = started.elapsed().as_secs_f64();
    let film = eavs_trace::content::ContentProfile::Film;
    let cold = fp::replay(Default::default(), film);
    let warm = fp::replay(store.session_prior(fp::HEADLINE_KEY, film.name()), film);
    (
        train_wall_s,
        store.len(),
        store.total_frames(),
        cold.early_mape,
        warm.early_mape,
    )
}

/// One powered LTE session (the F28 probe workload, EAVS governor,
/// phone model) for the report's `power` counter block. Runs the
/// builder directly — no cache — so the wall time includes the post-hoc
/// device-power accounting it is meant to watch.
fn measure_power() -> (eavs_core::SessionReport, f64) {
    let started = Instant::now();
    let report = eavs_bench::device_power::powered_lte_session().run();
    (report, started.elapsed().as_secs_f64())
}

/// The governor dispatch comparison (dyn trait object vs devirtualized
/// enum vs vectorized LUT column) over the shared [`dispatch`] workload
/// — the same lanes the `governor_dispatch` criterion bench steps.
/// Returns best-of-reps ns/decision arrays indexed like
/// [`dispatch::WIDTHS`].
fn measure_dispatch(smoke: bool) -> ([f64; 3], [f64; 3], [f64; 3]) {
    let (steps, reps) = if smoke { (2_000, 3) } else { (20_000, 5) };
    let mut dyn_ns = [0.0; 3];
    let mut enum_ns = [0.0; 3];
    let mut lut_ns = [0.0; 3];
    for (i, width) in dispatch::WIDTHS.into_iter().enumerate() {
        let (d, e, l) = dispatch::measure_ns_per_decision(width, steps, reps);
        dyn_ns[i] = d;
        enum_ns[i] = e;
        lut_ns[i] = l;
    }
    (dyn_ns, enum_ns, lut_ns)
}

/// Formats a 3-wide ns/decision array as a JSON array literal.
fn ns_array(ns: &[f64; 3]) -> String {
    format!("[{:.1}, {:.1}, {:.1}]", ns[0], ns[1], ns[2])
}

/// One profiled 1080p30 session; returns the phase-breakdown JSON.
fn measure_profile(secs: u64) -> String {
    let report = StreamingSession::builder(governor("eavs"))
        .manifest(manifest_1080p30(secs))
        .seed(SEED)
        .profile(true)
        .run();
    report
        .profile
        .expect("profiled run must carry a breakdown")
        .to_json()
}

fn main() {
    let started = Instant::now();
    let mut smoke = false;
    let mut profile = false;
    let mut budget_s: Option<f64> = None;
    let mut min_kernel_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--profile" => profile = true,
            "--budget-s" => {
                let raw = args.next().unwrap_or_default();
                match raw.parse::<f64>() {
                    Ok(n) if n > 0.0 => budget_s = Some(n),
                    _ => {
                        eprintln!("error: --budget-s needs a positive number, got {raw:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--min-kernel-speedup" => {
                let raw = args.next().unwrap_or_default();
                match raw.parse::<f64>() {
                    Ok(n) if n > 0.0 => min_kernel_speedup = Some(n),
                    _ => {
                        eprintln!(
                            "error: --min-kernel-speedup needs a positive number, got {raw:?}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\n\
                     usage: bench_report [--smoke] [--profile] [--budget-s N] \
                     [--min-kernel-speedup X]"
                );
                std::process::exit(2);
            }
        }
    }
    let workers = eavs_bench::executor::pool().workers();

    let (chain, chain_reps, sessions, session_secs) = if smoke {
        (100_000u64, 2u32, workers.max(2), 10u64)
    } else {
        (100_000u64, 5u32, (workers * 4).max(8), 60u64)
    };

    eprintln!("bench_report: {workers} worker(s), smoke={smoke}");

    let events_per_sec = measure_events_per_sec(chain, chain_reps);
    eprintln!("  events/sec      {events_per_sec:.0}");

    let (sessions_per_sec, allocations_per_session) =
        measure_sessions_per_sec(sessions, session_secs);
    eprintln!("  sessions/sec    {sessions_per_sec:.2} ({sessions} x {session_secs} s sessions)");
    eprintln!("  allocs/session  {allocations_per_session:.0}");

    // In smoke mode the pool-sized session count would hand the kernel a
    // degenerate one-lane shard; measure it over at least 16 sessions
    // (width 4) so the number reflects batched execution. Smoke sessions
    // are 10 simulated seconds, so the extra lanes cost milliseconds.
    let kernel_sessions = if smoke { sessions.max(16) } else { sessions };

    let serial_sessions_per_sec = measure_scalar_reference(kernel_sessions, session_secs);
    eprintln!("  serial/sec      {serial_sessions_per_sec:.2} (scalar, single thread)");

    let (kernel_sessions_per_sec, kernel_allocations_per_session) =
        measure_kernel_sessions_per_sec(kernel_sessions, session_secs);
    eprintln!(
        "  kernel/sec      {kernel_sessions_per_sec:.2} (batched SoA, single thread, \
         {kernel_allocations_per_session:.0} allocs/session)"
    );

    let (run_all_wall_s, experiments) = measure_run_all(smoke);
    eprintln!("  run_all cold    {run_all_wall_s:.2} s ({experiments} experiments)");

    // Second pass over the same suite: every cacheable session is now
    // memoized, so this measures the warm-cache speedup.
    let (run_all_warm_wall_s, _) = measure_run_all(smoke);
    let warm_speedup = run_all_wall_s / run_all_warm_wall_s.max(1e-9);
    eprintln!("  run_all warm    {run_all_warm_wall_s:.2} s ({warm_speedup:.1}x)");

    let (fleet_sessions_per_sec, fleet_cache_hit_rate, fleet_outcome) = measure_fleet(smoke);
    let fleet_session_runs = fleet_outcome.session_runs;
    let fleet_peak_shard_bytes = fleet_outcome.peak_shard_bytes;
    eprintln!(
        "  fleet           {fleet_sessions_per_sec:.0} session-runs/sec \
         ({fleet_session_runs} runs, {} replayed, {} batched, {:.0}% cache hits, \
         peak shard {:.1} KiB)",
        fleet_outcome.replayed,
        fleet_outcome.batched,
        fleet_cache_hit_rate * 100.0,
        fleet_peak_shard_bytes as f64 / 1024.0,
    );

    let (daemon_http_per_sec, daemon_direct_per_sec, daemon_session_runs) =
        measure_daemon(smoke);
    eprintln!(
        "  daemon          {daemon_http_per_sec:.0} session-runs/sec over HTTP vs \
         {daemon_direct_per_sec:.0} in-process ({daemon_session_runs} runs each)"
    );

    let (
        prior_train_wall_s,
        prior_catalog_entries,
        prior_trained_frames,
        prior_cold_early_mape,
        prior_warm_early_mape,
    ) = measure_prior();
    eprintln!(
        "  prior           trained {prior_trained_frames} frames over \
         {prior_catalog_entries} (title, content) entries in {prior_train_wall_s:.2} s; \
         early MAPE {:.1}% cold -> {:.1}% warm",
        prior_cold_early_mape * 100.0,
        prior_warm_early_mape * 100.0,
    );

    let (power_report, power_wall_s) = measure_power();
    let power = power_report.power;
    let power_device_j = power_report.cpu_joules() + power.total_j();
    eprintln!(
        "  power           radio {:.1} J ({} promos), display {:.1} J, decoder {:.1} J, \
         device {power_device_j:.1} J ({power_wall_s:.2} s wall)",
        power.radio_j, power.radio_promotions, power.display_j, power.decoder_j,
    );

    let (dispatch_dyn_ns, dispatch_enum_ns, dispatch_lut_ns) = measure_dispatch(smoke);
    eprintln!(
        "  dispatch        dyn {} / enum {} / lut {} ns per decision (widths {:?})",
        ns_array(&dispatch_dyn_ns),
        ns_array(&dispatch_enum_ns),
        ns_array(&dispatch_lut_ns),
        dispatch::WIDTHS,
    );

    let session = eavs_bench::cache::stats();
    let segment = eavs_trace::memo::segment_cache_stats();
    let trace = eavs_trace::memo::trace_cache_stats();
    let timeline = eavs_trace::memo::decision_timeline_stats();
    let replayed_sessions = eavs_core::session::replayed_sessions();
    let injected_decisions = eavs_core::session::injected_decisions();
    eprintln!(
        "  session cache   {} hits / {} misses / {} uncacheable / {} evicted \
         ({:.0}% hit, {:.1} MiB)",
        session.hits,
        session.misses,
        session.uncacheable,
        session.evictions,
        session.hit_rate() * 100.0,
        session.bytes as f64 / (1024.0 * 1024.0),
    );
    eprintln!(
        "  segment cache   {} hits / {} misses; trace cache {} hits / {} misses",
        segment.hits, segment.misses, trace.hits, trace.misses,
    );
    eprintln!(
        "  replay          {} sessions replayed, {} decisions injected \
         ({} timeline hits / {} misses)",
        replayed_sessions, injected_decisions, timeline.hits, timeline.misses,
    );

    // Optional per-phase breakdown: one profiled session, reported as a
    // "profile" object (wall times are host-dependent by design).
    let profile_field = if profile {
        let breakdown = measure_profile(session_secs);
        eprintln!("  profile         {breakdown}");
        format!("  \"profile\": {breakdown},\n")
    } else {
        String::new()
    };

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        concat!(
            "{{\n",
            "  \"events_per_sec\": {events_per_sec:.0},\n",
            "  \"sessions_per_sec\": {sessions_per_sec:.3},\n",
            "  \"serial_sessions_per_sec\": {serial_sessions_per_sec:.3},\n",
            "  \"kernel_sessions_per_sec\": {kernel_sessions_per_sec:.3},\n",
            "  \"allocations_per_session\": {allocations_per_session:.0},\n",
            "  \"kernel_allocations_per_session\": {kernel_allocations_per_session:.0},\n",
            "  \"run_all_wall_s\": {run_all_wall_s:.3},\n",
            "  \"run_all_warm_wall_s\": {run_all_warm_wall_s:.3},\n",
            "  \"warm_speedup\": {warm_speedup:.2},\n",
            "  \"session_cache\": {{\n",
            "    \"hits\": {session_hits},\n",
            "    \"misses\": {session_misses},\n",
            "    \"uncacheable\": {session_uncacheable},\n",
            "    \"bytes\": {session_bytes},\n",
            "    \"evictions\": {session_evictions},\n",
            "    \"hit_rate\": {session_hit_rate:.4}\n",
            "  }},\n",
            "  \"segment_cache\": {{ \"hits\": {segment_hits}, \"misses\": {segment_misses} }},\n",
            "  \"trace_cache\": {{ \"hits\": {trace_hits}, \"misses\": {trace_misses} }},\n",
            "  \"replay\": {{\n",
            "    \"sessions_replayed\": {replayed_sessions},\n",
            "    \"decisions_injected\": {injected_decisions},\n",
            "    \"timeline_hits\": {timeline_hits},\n",
            "    \"timeline_misses\": {timeline_misses}\n",
            "  }},\n",
            "  \"governor_dispatch\": {{\n",
            "    \"widths\": [1, 8, 64],\n",
            "    \"dyn_ns_per_decision\": {dispatch_dyn_ns},\n",
            "    \"enum_ns_per_decision\": {dispatch_enum_ns},\n",
            "    \"lut_ns_per_decision\": {dispatch_lut_ns}\n",
            "  }},\n",
            "  \"power\": {{\n",
            "    \"radio_j\": {power_radio_j:.3},\n",
            "    \"radio_promotions\": {power_promotions},\n",
            "    \"display_j\": {power_display_j:.3},\n",
            "    \"decoder_j\": {power_decoder_j:.3},\n",
            "    \"device_j\": {power_device_j:.3},\n",
            "    \"session_wall_s\": {power_wall_s:.3}\n",
            "  }},\n",
            "  \"fleet\": {{\n",
            "    \"session_runs\": {fleet_session_runs},\n",
            "    \"sessions_per_sec\": {fleet_sessions_per_sec:.1},\n",
            "    \"cache_hit_rate\": {fleet_cache_hit_rate:.4},\n",
            "    \"replayed\": {fleet_replayed},\n",
            "    \"batched\": {fleet_batched},\n",
            "    \"peak_shard_bytes\": {fleet_peak_shard_bytes}\n",
            "  }},\n",
            "  \"daemon\": {{\n",
            "    \"session_runs\": {daemon_session_runs},\n",
            "    \"http_sessions_per_sec\": {daemon_http_per_sec:.1},\n",
            "    \"direct_sessions_per_sec\": {daemon_direct_per_sec:.1}\n",
            "  }},\n",
            "  \"prior\": {{\n",
            "    \"train_wall_s\": {prior_train_wall_s:.3},\n",
            "    \"catalog_entries\": {prior_catalog_entries},\n",
            "    \"trained_frames\": {prior_trained_frames},\n",
            "    \"cold_early_mape\": {prior_cold_early_mape:.4},\n",
            "    \"warm_early_mape\": {prior_warm_early_mape:.4}\n",
            "  }},\n",
            "{profile_field}",
            "  \"experiments\": {experiments},\n",
            "  \"workers\": {workers},\n",
            "  \"smoke\": {smoke},\n",
            "  \"unix_time\": {unix_time}\n",
            "}}\n",
        ),
        events_per_sec = events_per_sec,
        sessions_per_sec = sessions_per_sec,
        serial_sessions_per_sec = serial_sessions_per_sec,
        kernel_sessions_per_sec = kernel_sessions_per_sec,
        allocations_per_session = allocations_per_session,
        kernel_allocations_per_session = kernel_allocations_per_session,
        run_all_wall_s = run_all_wall_s,
        run_all_warm_wall_s = run_all_warm_wall_s,
        warm_speedup = warm_speedup,
        session_hits = session.hits,
        session_misses = session.misses,
        session_uncacheable = session.uncacheable,
        session_bytes = session.bytes,
        session_evictions = session.evictions,
        session_hit_rate = session.hit_rate(),
        segment_hits = segment.hits,
        segment_misses = segment.misses,
        trace_hits = trace.hits,
        trace_misses = trace.misses,
        replayed_sessions = replayed_sessions,
        injected_decisions = injected_decisions,
        timeline_hits = timeline.hits,
        timeline_misses = timeline.misses,
        dispatch_dyn_ns = ns_array(&dispatch_dyn_ns),
        dispatch_enum_ns = ns_array(&dispatch_enum_ns),
        dispatch_lut_ns = ns_array(&dispatch_lut_ns),
        power_radio_j = power.radio_j,
        power_promotions = power.radio_promotions,
        power_display_j = power.display_j,
        power_decoder_j = power.decoder_j,
        power_device_j = power_device_j,
        power_wall_s = power_wall_s,
        fleet_session_runs = fleet_session_runs,
        fleet_sessions_per_sec = fleet_sessions_per_sec,
        fleet_cache_hit_rate = fleet_cache_hit_rate,
        fleet_replayed = fleet_outcome.replayed,
        fleet_batched = fleet_outcome.batched,
        fleet_peak_shard_bytes = fleet_peak_shard_bytes,
        daemon_session_runs = daemon_session_runs,
        daemon_http_per_sec = daemon_http_per_sec,
        daemon_direct_per_sec = daemon_direct_per_sec,
        prior_train_wall_s = prior_train_wall_s,
        prior_catalog_entries = prior_catalog_entries,
        prior_trained_frames = prior_trained_frames,
        prior_cold_early_mape = prior_cold_early_mape,
        prior_warm_early_mape = prior_warm_early_mape,
        profile_field = profile_field,
        experiments = experiments,
        workers = workers,
        smoke = smoke,
        unix_time = unix_time,
    );
    println!("{json}");

    let dir = harness::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    // Smoke runs get their own file so CI never clobbers the full report.
    let name = if smoke {
        "BENCH_sim.smoke.json"
    } else {
        "BENCH_sim.json"
    };
    let path = dir.join(name);
    std::fs::write(&path, &json).expect("write bench report");
    eprintln!("wrote {}", path.display());

    // Soft perf floor (CI): the batched kernel must sustain at least
    // `min` times the single-threaded scalar dispatcher on the same
    // sessions. Compared against a dedicated serial run rather than the
    // pooled number above so both sides see one thread and the same
    // machine state; enforced after the report is written so a failing
    // run still leaves the numbers behind.
    if let Some(min) = min_kernel_speedup {
        let speedup = kernel_sessions_per_sec / serial_sessions_per_sec.max(1e-9);
        eprintln!(
            "kernel speedup {speedup:.2}x over serial scalar \
             ({serial_sessions_per_sec:.2}/s), floor {min}x"
        );
        if speedup < min {
            eprintln!("error: kernel speedup below the --min-kernel-speedup {min} floor");
            std::process::exit(1);
        }
    }

    // Budget enforcement comes last so a slow run still leaves a
    // complete report behind for diagnosis.
    if let Some(budget) = budget_s {
        let took = started.elapsed().as_secs_f64();
        if took > budget {
            eprintln!("error: bench_report took {took:.2} s, over the --budget-s {budget} budget");
            std::process::exit(1);
        }
        eprintln!("within budget: {took:.2} s <= {budget} s");
    }
}
