//! Parameter sweeps: F7 (bitrate/resolution), F8 (frame rate), F10
//! (safety margin) and F13 (design ablations).

use std::sync::Arc;

use crate::harness::{eavs_with, governor, manifest_1080p30, run_sessions, single_manifest, SEED};
use eavs_core::governor::EavsConfig;
use eavs_core::predictor::PREDICTOR_NAMES;
use eavs_core::session::{SessionBuilder, StreamingSession};
use eavs_metrics::table::Table;
use eavs_trace::content::ContentProfile;
use eavs_video::manifest::Manifest;

/// The quality rungs swept by F7 (matching the standard ladder).
const RUNGS: [(u32, u32, u32, &str); 5] = [
    (700, 640, 360, "360p"),
    (1_500, 854, 480, "480p"),
    (3_000, 1280, 720, "720p"),
    (6_000, 1920, 1080, "1080p"),
    (10_000, 2560, 1440, "1440p"),
];

const SWEEP_GOVERNORS: [&str; 4] = ["performance", "ondemand", "interactive", "eavs"];

fn build_one(gov: &str, manifest: Arc<Manifest>, content: ContentProfile) -> SessionBuilder {
    StreamingSession::builder(governor(gov))
        .manifest(manifest)
        .content(content)
        .seed(SEED)
}

/// F7: CPU energy vs bitrate/resolution rung (30 fps, film).
pub fn f7_bitrate_sweep() -> Table {
    let mut t = Table::new(&[
        "rung",
        "performance (J)",
        "ondemand (J)",
        "interactive (J)",
        "eavs (J)",
        "eavs saving vs ondemand",
        "eavs miss %",
    ]);
    t.set_title("F7: CPU energy across the quality ladder — 60 s film @30fps");
    for (kbps, w, h, label) in RUNGS {
        let manifest = Arc::new(single_manifest(kbps, w, h, 60, 30));
        let reports = run_sessions(
            SWEEP_GOVERNORS
                .iter()
                .map(|&g| {
                    (
                        format!("f7 {label} {g}"),
                        build_one(g, Arc::clone(&manifest), ContentProfile::Film),
                    )
                })
                .collect(),
        );
        let ondemand = reports[1].cpu_joules();
        let eavs = &reports[3];
        t.row(&[
            label,
            &format!("{:.2}", reports[0].cpu_joules()),
            &format!("{:.2}", reports[1].cpu_joules()),
            &format!("{:.2}", reports[2].cpu_joules()),
            &format!("{:.2}", eavs.cpu_joules()),
            &format!("{:.1}%", (1.0 - eavs.cpu_joules() / ondemand) * 100.0),
            &format!("{:.3}", eavs.qoe.deadline_miss_rate() * 100.0),
        ]);
    }
    t
}

/// F8: CPU energy and misses vs frame rate (1080p film).
pub fn f8_framerate_sweep() -> Table {
    let mut t = Table::new(&[
        "fps",
        "governor",
        "cpu (J)",
        "miss %",
        "mean freq",
        "saving vs ondemand",
    ]);
    t.set_title("F8: frame-rate sweep — 60 s of 1080p film at 24/30/60 fps");
    for fps in [24u32, 30, 60] {
        let manifest = Arc::new(single_manifest(6_000, 1920, 1080, 60, fps));
        let reports = run_sessions(
            SWEEP_GOVERNORS
                .iter()
                .map(|&g| {
                    (
                        format!("f8 {fps}fps {g}"),
                        build_one(g, Arc::clone(&manifest), ContentProfile::Film),
                    )
                })
                .collect(),
        );
        let ondemand = reports[1].cpu_joules();
        for r in &reports {
            t.row(&[
                &fps.to_string(),
                &r.governor,
                &format!("{:.2}", r.cpu_joules()),
                &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
                &r.mean_freq.to_string(),
                &format!("{:+.1}%", (r.cpu_joules() / ondemand - 1.0) * 100.0),
            ]);
        }
    }
    t
}

/// F10: sensitivity to the EAVS safety margin (sport content stresses the
/// predictor).
pub fn f10_margin_sweep() -> Table {
    let margins = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50];
    let mut t = Table::new(&["margin", "cpu (J)", "late vsyncs", "miss %", "transitions"]);
    t.set_title("F10: EAVS safety-margin sweep — 60 s of 1080p30 sport");
    let manifest = Arc::new(manifest_1080p30(60));
    let reports = run_sessions(
        margins
            .iter()
            .map(|&margin| {
                let cfg = EavsConfig {
                    margin,
                    ..EavsConfig::default()
                };
                let builder = StreamingSession::builder(eavs_with(cfg, "hybrid"))
                    .manifest(Arc::clone(&manifest))
                    .content(ContentProfile::Sport)
                    .seed(SEED);
                (format!("f10 margin {margin:.2}"), builder)
            })
            .collect(),
    );
    for (margin, r) in margins.iter().zip(&reports) {
        t.row(&[
            &format!("{:.0}%", margin * 100.0),
            &format!("{:.2}", r.cpu_joules()),
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &r.transitions.to_string(),
        ]);
    }
    t
}

/// F13: design ablations — predictor choice, energy floor, race-on-fill,
/// hysteresis, lookahead. Run on sport (stresses prediction) and
/// animation (light load, where the energy floor is decisive).
pub fn f13_ablations() -> Table {
    let mut t = Table::new(&[
        "variant",
        "content",
        "cpu (J)",
        "late vsyncs",
        "rebuf",
        "startup (ms)",
        "transitions",
    ]);
    t.set_title("F13: EAVS ablations — 60 s of 1080p30");

    struct Variant {
        label: String,
        predictor: &'static str,
        config: EavsConfig,
    }
    let mut variants = Vec::new();
    for p in PREDICTOR_NAMES {
        variants.push(Variant {
            label: format!("predictor={p}"),
            predictor: p,
            config: EavsConfig::default(),
        });
    }
    variants.push(Variant {
        label: "predictor=oracle (bound)".into(),
        predictor: "oracle",
        config: EavsConfig::default(),
    });
    variants.push(Variant {
        label: "oracle, margin=0 (bound)".into(),
        predictor: "oracle",
        config: EavsConfig {
            margin: 0.0,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "no-race-on-fill".into(),
        predictor: "hybrid",
        config: EavsConfig {
            race_on_fill: false,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "no-energy-floor".into(),
        predictor: "hybrid",
        config: EavsConfig {
            energy_floor: false,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "no-hysteresis".into(),
        predictor: "hybrid",
        config: EavsConfig {
            down_hysteresis: 1,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "hysteresis=8".into(),
        predictor: "hybrid",
        config: EavsConfig {
            down_hysteresis: 8,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "lookahead=1".into(),
        predictor: "hybrid",
        config: EavsConfig {
            lookahead: 1,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "lookahead=16".into(),
        predictor: "hybrid",
        config: EavsConfig {
            lookahead: 16,
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "tick=5ms".into(),
        predictor: "hybrid",
        config: EavsConfig {
            decision_interval: eavs_sim::time::SimDuration::from_millis(5),
            ..EavsConfig::default()
        },
    });
    variants.push(Variant {
        label: "tick=100ms".into(),
        predictor: "hybrid",
        config: EavsConfig {
            decision_interval: eavs_sim::time::SimDuration::from_millis(100),
            ..EavsConfig::default()
        },
    });

    let manifest = Arc::new(manifest_1080p30(60));
    for content in [ContentProfile::Sport, ContentProfile::Animation] {
        let reports = run_sessions(
            variants
                .iter()
                .map(|v| {
                    let builder = StreamingSession::builder(eavs_with(v.config, v.predictor))
                        .manifest(Arc::clone(&manifest))
                        .content(content)
                        .seed(SEED);
                    (format!("f13 {} {}", v.label, content.name()), builder)
                })
                .collect(),
        );
        for (v, r) in variants.iter().zip(&reports) {
            t.row(&[
                &v.label,
                content.name(),
                &format!("{:.2}", r.cpu_joules()),
                &r.qoe.late_vsyncs.to_string(),
                &r.qoe.rebuffer_events.to_string(),
                &format!("{:.0}", r.qoe.startup_delay.as_secs_f64() * 1e3),
                &r.transitions.to_string(),
            ]);
        }
    }
    t
}
