//! Property-based tests for the video pipeline.

use eavs_cpu::freq::Cycles;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_video::display::{Playback, PlaybackPhase, VsyncOutcome};
use eavs_video::frame::{Frame, FrameType};
use eavs_video::gop::GopStructure;
use eavs_video::pipeline::DecodePipeline;
use proptest::prelude::*;

fn frame(index: u64) -> Frame {
    Frame {
        index,
        frame_type: FrameType::P,
        size_bytes: 1000,
        decode_cycles: Cycles::from_mega(5.0),
        duration: SimDuration::from_nanos(33_333_333),
    }
}

proptest! {
    /// Under any interleaving of pushes, decodes and displays the pipeline
    /// (a) conserves frames, (b) never exceeds the decoded cap, and
    /// (c) delivers frames in order.
    #[test]
    fn pipeline_invariants(
        cap in 1usize..8,
        ops in proptest::collection::vec(0u8..4, 0..200),
    ) {
        let mut p = DecodePipeline::new(cap);
        let mut pushed = 0u64;
        let mut displayed = Vec::new();
        for op in ops {
            match op {
                0 => {
                    p.push_frames((pushed..pushed + 3).map(frame));
                    pushed += 3;
                }
                1 => {
                    if p.can_start_decode() {
                        p.start_decode();
                    }
                }
                2 => {
                    if p.in_flight().is_some() {
                        p.finish_decode();
                    }
                }
                _ => {
                    if let Some(f) = p.take_decoded() {
                        displayed.push(f.index);
                    }
                }
            }
            prop_assert!(p.decoded_len() <= cap);
            let accounted = p.frames_buffered() as u64 + displayed.len() as u64;
            prop_assert_eq!(accounted, pushed, "frame conservation violated");
        }
        // In-order delivery.
        for w in displayed.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    /// Playback accounting: displayed + late + starved transitions never
    /// exceed the number of vsync calls, and displayed never exceeds the
    /// stream length.
    #[test]
    fn playback_accounting(
        total in 1u64..60,
        feed_pattern in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let mut playback = Playback::new(total, 1, 2);
        let mut pipeline = DecodePipeline::new(4);
        let mut next_frame = 0u64;
        let mut vsyncs = 0u64;
        let mut t = SimTime::ZERO;
        for &feed in &feed_pattern {
            t += SimDuration::from_millis(33);
            if feed && next_frame < total {
                pipeline.push_frames([frame(next_frame)]);
                next_frame += 1;
                while pipeline.can_start_decode() {
                    pipeline.start_decode();
                    pipeline.finish_decode();
                }
            }
            match playback.phase() {
                PlaybackPhase::Startup | PlaybackPhase::Rebuffering => {
                    if pipeline.decoded_len() > 0 {
                        playback.maybe_start(t, pipeline.frames_buffered(), next_frame >= total);
                    }
                }
                PlaybackPhase::Playing => {
                    vsyncs += 1;
                    let out = playback.on_vsync(t, &mut pipeline);
                    if matches!(out, VsyncOutcome::Ended(_)) {
                        break;
                    }
                }
                PlaybackPhase::Ended => break,
            }
        }
        prop_assert!(playback.frames_displayed() <= total);
        prop_assert!(playback.frames_displayed() + playback.late_vsyncs()
            + playback.rebuffer_events() <= vsyncs + 1);
        playback.finalize(t);
        prop_assert!(playback.rebuffer_time() <= t - SimTime::ZERO);
    }

    /// GOP type mixes always sum to 1 and contain the right I fraction.
    #[test]
    fn gop_mix_consistency(gop_len in 1u32..120, b_per_p in 0u32..4) {
        let g = GopStructure::new(gop_len, b_per_p);
        let mix = g.type_mix();
        prop_assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert!((mix[0] - 1.0 / f64::from(gop_len)).abs() < 1e-12);
        // Frame 0 of every GOP is I.
        for k in 0..3u64 {
            prop_assert_eq!(
                g.frame_type_at(k * u64::from(gop_len)),
                eavs_video::frame::FrameType::I
            );
        }
    }
}
