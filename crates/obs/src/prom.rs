//! Prometheus text-exposition rendering.
//!
//! [`PromWriter`] builds a metrics page in the Prometheus text format
//! (version 0.0.4) without any HTTP machinery — callers write the
//! string to a file (`eavsctl fleet --metrics-out metrics.prom`) for a
//! node-exporter-style textfile collector to pick up, or serve it
//! however they like.
//!
//! Formatting rules that keep output deterministic:
//!
//! - Metrics appear in the order they were added; no sorting happens
//!   behind the caller's back.
//! - Values render via Rust's shortest-round-trip float `Display`, so
//!   the same numbers always produce the same bytes.
//! - Histograms follow the Prometheus convention: cumulative `le`
//!   buckets (including everything below the histogram's range in the
//!   first bucket), a `+Inf` bucket, then `_count` and `_sum` samples.

use std::fmt::Write as _;

use eavs_metrics::histogram::Histogram;

/// The `Content-Type` an HTTP scrape endpoint must declare for pages
/// produced here — Prometheus text exposition format, version 0.0.4.
pub const TEXT_FORMAT: &str = "text/plain; version=0.0.4";

/// Checks a finished page for scrape conformance: every sample's family
/// must have exactly one `# HELP` and one `# TYPE` line, both appearing
/// before the family's first sample. Histogram series
/// (`_bucket`/`_count`/`_sum`) resolve to their base family when that
/// family is typed `histogram`.
///
/// [`PromWriter`] itself never enforces this — ad-hoc pages without
/// headers are legal — but anything served at a `/metrics` endpoint
/// should pass.
///
/// # Errors
///
/// Returns a message naming the first offending family or line.
pub fn check_conformance(page: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    // family -> (occurrences, first line index)
    let mut help: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    // family -> (kind, occurrences, first line index)
    let mut types: BTreeMap<&str, (&str, usize, usize)> = BTreeMap::new();
    for (i, line) in page.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            help.entry(name).or_insert((0, i)).0 += 1;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            types.entry(name).or_insert((kind, 0, i)).1 += 1;
        }
    }
    for (name, (_, n, _)) in &types {
        if *n != 1 {
            return Err(format!("{n} TYPE lines for family {name}"));
        }
    }
    for (name, (n, _)) in &help {
        if *n != 1 {
            return Err(format!("{n} HELP lines for family {name}"));
        }
    }
    for (i, line) in page.lines().enumerate() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line.split(['{', ' ']).next().unwrap_or("");
        if name.is_empty() {
            return Err(format!("line {}: unparseable sample {line:?}", i + 1));
        }
        let family = ["_bucket", "_count", "_sum"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                matches!(types.get(base), Some(("histogram", _, _))).then_some(base)
            })
            .unwrap_or(name);
        let (_, h_line) = help
            .get(family)
            .ok_or_else(|| format!("sample family {family} has no # HELP line"))?;
        let (_, _, t_line) = types
            .get(family)
            .ok_or_else(|| format!("sample family {family} has no # TYPE line"))?;
        if *h_line > i || *t_line > i {
            return Err(format!(
                "family {family}: headers appear after its first sample"
            ));
        }
    }
    Ok(())
}

/// Builds a Prometheus text-exposition page.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// Creates an empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `# HELP` line for `name`.
    pub fn help(&mut self, name: &str, text: &str) -> &mut Self {
        let _ = writeln!(self.out, "# HELP {name} {text}");
        self
    }

    /// Adds a `# TYPE` line for `name` (`counter`, `gauge`, `histogram`...).
    pub fn type_(&mut self, name: &str, kind: &str) -> &mut Self {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// Adds one sample line: `name{labels} value`.
    ///
    /// `labels` are `(key, value)` pairs; pass `&[]` for none. Label
    /// values are escaped per the exposition format.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {}", PromNum(value));
        self
    }

    /// Adds a whole histogram in the standard exposition shape:
    /// cumulative `le` buckets, `+Inf`, `_count`, `_sum`.
    ///
    /// `sum` is supplied by the caller because [`Histogram`] stores
    /// counts only; fleet aggregates carry the matching exact sums.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        h: &Histogram,
        sum: f64,
    ) -> &mut Self {
        let mut cumulative = h.underflow();
        for i in 0..h.num_bins() {
            cumulative += h.bin_count(i);
            let (_, hi) = h.bin_edges(i);
            self.out.push_str(name);
            self.out.push_str("_bucket");
            write_labels_with_le(&mut self.out, labels, &PromNum(hi).to_string());
            let _ = writeln!(self.out, " {cumulative}");
        }
        cumulative += h.overflow();
        self.out.push_str(name);
        self.out.push_str("_bucket");
        write_labels_with_le(&mut self.out, labels, "+Inf");
        let _ = writeln!(self.out, " {cumulative}");

        self.out.push_str(name);
        self.out.push_str("_count");
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {}", h.total());

        self.out.push_str(name);
        self.out.push_str("_sum");
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {}", PromNum(sum));
        self
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }

    /// Borrowed view of the page so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }
}

/// Renders a float the Prometheus way: integers without a trailing
/// `.0`, everything else via shortest-round-trip `Display`.
struct PromNum(f64);

impl std::fmt::Display for PromNum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0;
        if v.is_infinite() {
            return f.write_str(if v > 0.0 { "+Inf" } else { "-Inf" });
        }
        if v.is_nan() {
            return f.write_str("NaN");
        }
        if v == v.trunc() && v.abs() < 1e15 {
            write!(f, "{}", v as i64)
        } else {
            write!(f, "{v}")
        }
    }
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

fn write_labels_with_le(out: &mut String, labels: &[(&str, &str)], le: &str) {
    out.push('{');
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{}\",", escape_label(v));
    }
    let _ = write!(out, "le=\"{le}\"");
    out.push('}');
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_and_headers_render() {
        let mut w = PromWriter::new();
        w.help("eavs_sessions_total", "Sessions completed.")
            .type_("eavs_sessions_total", "counter")
            .sample("eavs_sessions_total", &[("governor", "eavs")], 42.0)
            .sample("eavs_wall_seconds", &[], 1.5);
        let page = w.finish();
        assert_eq!(
            page,
            "# HELP eavs_sessions_total Sessions completed.\n\
             # TYPE eavs_sessions_total counter\n\
             eavs_sessions_total{governor=\"eavs\"} 42\n\
             eavs_wall_seconds 1.5\n"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-1.0); // underflow
        h.record(1.0); // bin 0
        h.record(6.0); // bin 1
        h.record(6.5); // bin 1
        h.record(99.0); // overflow
        let mut w = PromWriter::new();
        w.histogram("eavs_energy_j", &[("governor", "eavs")], &h, 111.5);
        let page = w.finish();
        assert_eq!(
            page,
            "eavs_energy_j_bucket{governor=\"eavs\",le=\"5\"} 2\n\
             eavs_energy_j_bucket{governor=\"eavs\",le=\"10\"} 4\n\
             eavs_energy_j_bucket{governor=\"eavs\",le=\"+Inf\"} 5\n\
             eavs_energy_j_count{governor=\"eavs\"} 5\n\
             eavs_energy_j_sum{governor=\"eavs\"} 111.5\n"
        );
    }

    #[test]
    fn label_values_escape() {
        let mut w = PromWriter::new();
        w.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(w.as_str(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn numbers_render_deterministically() {
        assert_eq!(PromNum(3.0).to_string(), "3");
        assert_eq!(PromNum(0.1).to_string(), "0.1");
        assert_eq!(PromNum(f64::INFINITY).to_string(), "+Inf");
        assert_eq!(PromNum(-0.0).to_string(), "0");
    }

    #[test]
    fn conformance_accepts_headed_families() {
        let mut w = PromWriter::new();
        w.help("eavs_a", "A.")
            .type_("eavs_a", "counter")
            .sample("eavs_a", &[("g", "x")], 1.0)
            .sample("eavs_a", &[("g", "y")], 2.0);
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0);
        w.help("eavs_h", "H.")
            .type_("eavs_h", "histogram")
            .histogram("eavs_h", &[], &h, 1.0);
        check_conformance(w.as_str()).unwrap();
    }

    #[test]
    fn conformance_rejects_headerless_duplicated_or_late_headers() {
        let mut w = PromWriter::new();
        w.sample("eavs_naked", &[], 1.0);
        assert!(check_conformance(w.as_str()).unwrap_err().contains("HELP"));

        let mut w = PromWriter::new();
        w.help("eavs_a", "A.")
            .help("eavs_a", "A again.")
            .type_("eavs_a", "counter")
            .sample("eavs_a", &[], 1.0);
        assert!(check_conformance(w.as_str())
            .unwrap_err()
            .contains("2 HELP"));

        let mut w = PromWriter::new();
        w.sample("eavs_a", &[], 1.0)
            .help("eavs_a", "A.")
            .type_("eavs_a", "counter");
        assert!(check_conformance(w.as_str())
            .unwrap_err()
            .contains("after its first sample"));

        // A `_count` suffix only folds into the base family when the
        // base is a histogram; otherwise it is its own (headerless) one.
        let mut w = PromWriter::new();
        w.help("eavs_n", "N.")
            .type_("eavs_n", "counter")
            .sample("eavs_n_count", &[], 1.0);
        assert!(check_conformance(w.as_str())
            .unwrap_err()
            .contains("eavs_n_count"));
    }
}
