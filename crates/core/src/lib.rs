//! # eavs-core — Energy-Aware Video Scaling
//!
//! The primary contribution of the reproduced paper (*Energy-Aware CPU
//! Frequency Scaling for Mobile Video Streaming*, ICDCS 2017): a
//! video-aware cpufreq governor that predicts per-frame decode workload,
//! derives deadlines from the display pipeline, and runs the CPU at the
//! slowest operating point that keeps every frame on time — plus the
//! [`session`] harness that wires it (and the baselines) into a full
//! streaming system for evaluation.
//!
//! * [`predictor`] — per-frame-type decode-cost predictors (F4).
//! * [`selector`] — prefix-demand → minimal-OPP selection with margin and
//!   hysteresis (F10).
//! * [`governor`] — the [`EavsGovernor`] decision logic (F5–F13).
//! * [`session`] — the [`session::StreamingSession`]
//!   builder: CPU + video + network + governor in one deterministic run.
//! * [`report`] — the per-session measurement record.
//!
//! ## Quickstart
//!
//! ```
//! use eavs_core::governor::{EavsConfig, EavsGovernor};
//! use eavs_core::predictor::Hybrid;
//! use eavs_core::session::{GovernorChoice, StreamingSession};
//! use eavs_sim::time::SimDuration;
//! use eavs_video::manifest::Manifest;
//!
//! let gov = GovernorChoice::Eavs(EavsGovernor::new(
//!     Box::new(Hybrid::default()),
//!     EavsConfig::default(),
//! ));
//! let report = StreamingSession::builder(gov)
//!     .manifest(Manifest::single(3_000, 1280, 720, SimDuration::from_secs(4), 30))
//!     .seed(7)
//!     .run();
//! assert_eq!(report.qoe.frames_displayed, report.qoe.total_frames);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod framestats;
pub mod governor;
pub mod predictor;
pub mod report;
pub mod selector;
pub mod session;

pub use batch::{batch_stats, run_batch, BatchStats, DEFAULT_WIDTH};
pub use framestats::FrameCycleStats;
pub use governor::{EavsConfig, EavsGovernor, PipelineSnapshot};
pub use predictor::{FleetPrior, FrameMeta, Hybrid, SessionPrior, WorkloadPredictor};
pub use report::SessionReport;
pub use selector::{required_hz, DemandItem, OppSelector};
pub use session::{
    injected_decisions, replayed_sessions, ClusterSelect, GovernorChoice, KernelHot, ReplayCtl,
    SessionBuilder, SessionScratch, SessionState, StreamingSession,
};
