//! The EAVS governor — the paper's contribution.
//!
//! A video-aware CPU frequency governor. Where stock governors infer
//! demand from utilization history, EAVS computes it from the player
//! pipeline directly:
//!
//! 1. **Predict** each pending frame's decode cycles from its container
//!    metadata and per-type feedback ([`WorkloadPredictor`]).
//! 2. **Derive deadlines** from the vsync schedule and the decoded-queue
//!    depth: with `d` frames already decoded, the in-flight frame is due
//!    at `next_vsync + d·τ`, the `j`-th waiting frame at
//!    `next_vsync + (d+1+j)·τ`.
//! 3. **Select** the slowest OPP whose clock rate covers the worst prefix
//!    demand with a safety margin, holding down-switches through a short
//!    hysteresis ([`OppSelector`]).
//! 4. **Phase policy**: while the buffer is filling (startup/rebuffer)
//!    race at the maximum frequency — the deadline there is "now"; while
//!    paused with a full pipeline, drop to the floor.
//!
//! The governor sees nothing a real implementation could not: container
//! frame sizes/types, the decoded-queue depth, vsync timing, and per-frame
//! cycle counts *after* decoding (perf counters).

use crate::predictor::{FrameMeta, WorkloadPredictor};
use crate::selector::{required_hz, DemandItem, OppSelector};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::freq::Cycles;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_trace::memo::{decision_kind, DecisionRecord};
use eavs_video::display::PlaybackPhase;

/// Configuration of the EAVS governor.
#[derive(Clone, Copy, Debug)]
pub struct EavsConfig {
    /// Fractional frequency headroom over the computed requirement.
    pub margin: f64,
    /// Consecutive decisions before a down-switch is applied.
    pub down_hysteresis: u32,
    /// How many waiting frames are considered when computing demand.
    pub lookahead: usize,
    /// Race at max frequency while the pipeline is filling
    /// (startup/rebuffering). Disabling this is the F13 ablation.
    pub race_on_fill: bool,
    /// Never select below the platform's critical speed while work is
    /// pending (see [`critical_speed_index`](crate::selector::critical_speed_index)):
    /// below it, slower costs *more* energy. The session computes the
    /// floor from the SoC's power model; disabling this is the F13
    /// ablation `no-energy-floor`.
    pub energy_floor: bool,
    /// Fallback decision period (decisions also happen on pipeline
    /// events).
    pub decision_interval: SimDuration,
    /// Graceful degradation under faults: when a decoded frame breaches
    /// its prediction by more than `panic_breach_factor`, or a rebuffer
    /// is reported via [`EavsGovernor::notify_rebuffer`], re-race at the
    /// maximum OPP for `panic_hold`, then decay back through the normal
    /// selector (hysteresis + critical-speed floor). Off by default:
    /// clean sessions are bit-identical with and without the feature.
    pub panic_recovery: bool,
    /// Actual/predicted cycle ratio that counts as a prediction breach.
    pub panic_breach_factor: f64,
    /// How long a panic pins the maximum OPP.
    pub panic_hold: SimDuration,
}

impl Default for EavsConfig {
    fn default() -> Self {
        EavsConfig {
            margin: 0.15,
            down_hysteresis: 3,
            lookahead: 8,
            race_on_fill: true,
            energy_floor: true,
            decision_interval: SimDuration::from_millis(20),
            panic_recovery: false,
            panic_breach_factor: 1.25,
            panic_hold: SimDuration::from_millis(250),
        }
    }
}

impl EavsConfig {
    /// The default configuration with panic recovery enabled — the
    /// resilient variant benchmarked by the fault-storm experiments.
    pub fn resilient() -> Self {
        EavsConfig {
            panic_recovery: true,
            ..EavsConfig::default()
        }
    }
}

/// The in-flight decode as the governor sees it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InFlightMeta {
    /// Container metadata of the frame being decoded.
    pub meta: FrameMeta,
    /// Cycles already spent on it (observable via perf counters).
    pub executed: Cycles,
}

/// A snapshot of the player pipeline at decision time.
#[derive(Clone, Debug)]
pub struct PipelineSnapshot {
    /// Decision instant.
    pub now: SimTime,
    /// Playback phase.
    pub phase: PlaybackPhase,
    /// The next vsync tick (meaningful while playing).
    pub next_vsync: SimTime,
    /// Vsync period (= frame duration).
    pub frame_period: SimDuration,
    /// Frames sitting decoded, ready for display.
    pub decoded_len: usize,
    /// The decode in flight, if any.
    pub in_flight: Option<InFlightMeta>,
    /// Container metadata of waiting (undecoded) frames, in decode order.
    pub upcoming: Vec<FrameMeta>,
}

/// The EAVS governor.
#[derive(Debug)]
pub struct EavsGovernor {
    predictor: Box<dyn WorkloadPredictor>,
    selector: OppSelector,
    config: EavsConfig,
    floor_index: OppIndex,
    decisions: u64,
    /// Reused demand buffer for [`decide`](Self::decide) — the hottest
    /// per-decision allocation in a session.
    demand_scratch: Vec<DemandItem>,
    /// A prediction breach or rebuffer was reported since the last
    /// decision; the next decision opens a panic window.
    breach_pending: bool,
    /// While set, decisions return the maximum OPP until this instant.
    panic_until: Option<SimTime>,
    /// Panic windows opened so far.
    panics: u64,
}

impl EavsGovernor {
    /// Creates the governor with the given predictor and configuration.
    pub fn new(predictor: Box<dyn WorkloadPredictor>, config: EavsConfig) -> Self {
        EavsGovernor {
            predictor,
            selector: OppSelector::new(config.margin, config.down_hysteresis),
            config,
            floor_index: 0,
            decisions: 0,
            demand_scratch: Vec::with_capacity(1 + config.lookahead),
            breach_pending: false,
            panic_until: None,
            panics: 0,
        }
    }

    /// Sets the platform's critical-speed floor (an OPP index). The
    /// session computes it from the SoC's power model at startup; a
    /// standalone deployment would derive it from the device power table
    /// once. Only takes effect while `config.energy_floor` is set.
    pub fn set_energy_floor(&mut self, index: OppIndex) {
        self.floor_index = index;
    }

    /// The configured critical-speed floor.
    pub fn energy_floor(&self) -> OppIndex {
        self.floor_index
    }

    /// Clamps a pacing decision up to the critical-speed floor when work
    /// is pending.
    fn apply_floor(&self, idx: OppIndex, has_work: bool, limits: PolicyLimits) -> OppIndex {
        if self.config.energy_floor && has_work {
            limits.clamp(idx.max(self.floor_index))
        } else {
            idx
        }
    }

    /// The governor's sysfs-style name.
    pub fn name(&self) -> &'static str {
        "eavs"
    }

    /// The configuration in force.
    pub fn config(&self) -> &EavsConfig {
        &self.config
    }

    /// The predictor's name (for reports).
    pub fn predictor_name(&self) -> &'static str {
        self.predictor.name()
    }

    /// Number of decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of panic windows opened (prediction breaches + rebuffers
    /// that triggered a re-race; zero unless `panic_recovery` is set).
    pub fn panics(&self) -> u64 {
        self.panics
    }

    /// Reports a rebuffer event (playback starved). With `panic_recovery`
    /// enabled, the next decision re-races at the maximum OPP.
    pub fn notify_rebuffer(&mut self) {
        if self.config.panic_recovery {
            self.breach_pending = true;
        }
    }

    /// Feedback after a frame finished decoding.
    pub fn observe_decode(&mut self, meta: FrameMeta, actual: Cycles) {
        if self.config.panic_recovery {
            let predicted = self.predictor.predict(meta);
            if predicted.get() > 0.0
                && actual.get() > predicted.get() * self.config.panic_breach_factor
            {
                self.breach_pending = true;
            }
        }
        self.predictor.observe(meta, actual);
    }

    /// Forwards ground-truth costs to the predictor (only the [`Oracle`]
    /// bound uses them; see
    /// [`WorkloadPredictor::preload`]).
    ///
    /// [`Oracle`]: crate::predictor::Oracle
    pub fn preload(&mut self, frames: &[(FrameMeta, Cycles)]) {
        self.predictor.preload(frames);
    }

    /// Wraps the configured predictor in a population-seeded
    /// [`FleetPrior`](crate::predictor::FleetPrior). The session calls
    /// this at startup when the builder carries a non-empty prior; it must
    /// happen before the first decision so fingerprints stay coherent.
    ///
    /// # Panics
    ///
    /// Panics if any decision has already been taken.
    pub fn seed_prior(&mut self, prior: crate::predictor::SessionPrior) {
        assert_eq!(self.decisions, 0, "prior seeded after decisions began");
        let inner = std::mem::replace(
            &mut self.predictor,
            Box::new(crate::predictor::LastValue::new()),
        );
        self.predictor = Box::new(crate::predictor::FleetPrior::new(inner, prior));
    }

    /// Predicts a frame's decode cost (exposed for the prediction-accuracy
    /// experiment F4).
    pub fn predict(&self, meta: FrameMeta) -> Cycles {
        self.predictor.predict(meta)
    }

    /// The demand items left behind by the most recent full `DEMAND`
    /// decision (the scratch is reused across decisions, so this is only
    /// meaningful immediately after such a decision — the session copies
    /// it into its steady-tick cache right away).
    pub(crate) fn last_demand(&self) -> &[DemandItem] {
        &self.demand_scratch
    }

    /// Whether the predictor's observations are type-local (see
    /// [`WorkloadPredictor::observe_is_type_local`]); gates the partial
    /// steady-cache refresh after a decode completion.
    pub(crate) fn observe_type_local(&self) -> bool {
        self.predictor.observe_is_type_local()
    }

    /// Computes the demand list for a snapshot (visible for tests and the
    /// ablation harness).
    pub fn demand(&self, snap: &PipelineSnapshot) -> Vec<DemandItem> {
        let mut items = Vec::with_capacity(1 + self.config.lookahead);
        self.demand_into(snap, &mut items);
        items
    }

    /// Fills `items` with the snapshot's demand list, reusing its capacity.
    fn demand_into(&self, snap: &PipelineSnapshot, items: &mut Vec<DemandItem>) {
        items.clear();
        let tau = snap.frame_period;
        let d = snap.decoded_len as u64;
        if let Some(inflight) = snap.in_flight {
            let predicted = self.predictor.predict(inflight.meta);
            // If the frame already overran its prediction, assume a
            // residual 10% remains rather than zero.
            let remaining = if inflight.executed.get() >= predicted.get() {
                predicted.scale(0.1)
            } else {
                predicted.saturating_sub(inflight.executed)
            };
            items.push(DemandItem {
                cycles: remaining,
                deadline: snap.next_vsync.saturating_add(tau * d),
            });
        }
        let base = d + u64::from(snap.in_flight.is_some());
        for (j, meta) in snap.upcoming.iter().take(self.config.lookahead).enumerate() {
            items.push(DemandItem {
                cycles: self.predictor.predict(*meta),
                deadline: snap.next_vsync.saturating_add(tau * (base + j as u64)),
            });
        }
    }

    /// The raw clock-rate requirement (Hz) of a snapshot's demand, before
    /// margin/OPP quantization — the quantity an automatic big.LITTLE
    /// placement policy compares against each cluster's ceiling.
    pub fn required_hz_for(&self, snap: &PipelineSnapshot) -> f64 {
        required_hz(snap.now, &self.demand(snap))
    }

    /// The *sustained* clock rate the stream needs: mean predicted cycles
    /// per upcoming frame divided by the frame period. Queue slack can
    /// make the momentary [`required_hz_for`](Self::required_hz_for) dip
    /// far below this, but a cluster whose ceiling is under the sustained
    /// rate will eventually fall behind — placement decisions must honor
    /// it.
    pub fn sustained_hz_for(&self, snap: &PipelineSnapshot) -> f64 {
        if snap.upcoming.is_empty() || snap.frame_period.is_zero() {
            return 0.0;
        }
        let mean_cycles: f64 = snap
            .upcoming
            .iter()
            .map(|m| self.predictor.predict(*m).get())
            .sum::<f64>()
            / snap.upcoming.len() as f64;
        mean_cycles / snap.frame_period.as_secs_f64()
    }

    /// Takes a frequency decision for the snapshot.
    pub fn decide(
        &mut self,
        snap: &PipelineSnapshot,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
    ) -> OppIndex {
        self.decide_core(snap, table, limits, cur, None).0
    }

    /// Takes a decision and appends its [`DecisionRecord`] to `out`, so a
    /// clean base session can publish its timeline for differential
    /// sweep replay.
    pub fn decide_recorded(
        &mut self,
        snap: &PipelineSnapshot,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
        out: &mut Vec<DecisionRecord>,
    ) -> OppIndex {
        let (idx, kind, required) = self.decide_core(snap, table, limits, cur, None);
        out.push(DecisionRecord {
            kind,
            chosen: idx as u16,
            required_bits: required.to_bits(),
        });
        idx
    }

    /// [`decide`](Self::decide) exposing the branch tag and computed
    /// demand, so the session can decide whether the decision's demand
    /// list is cacheable for steady-tick reuse (only `DEMAND` branches
    /// leave a meaningful list behind).
    pub(crate) fn decide_tagged(
        &mut self,
        snap: &PipelineSnapshot,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
    ) -> (OppIndex, u8, f64) {
        self.decide_core(snap, table, limits, cur, None)
    }

    /// Takes a decision by *injecting* a recorded demand value instead of
    /// re-running the predictor over the demand window — the expensive
    /// part of a decision. Everything else (panic bookkeeping, selector
    /// hysteresis with this governor's own margin, the energy floor, the
    /// decision counter) runs live, so the governor's internal state
    /// stays exactly what a full decision sequence would have produced.
    ///
    /// Returns `None` without touching any state when this snapshot
    /// would take a different branch than the record (the caller then
    /// falls back to a full [`decide`](Self::decide)). The injected
    /// demand is only valid while the replaying session's trajectory is
    /// bit-identical to the recorder's; the caller enforces that by
    /// checking fault cleanliness and comparing the returned index
    /// against [`DecisionRecord::chosen`] after every injection.
    pub fn decide_replayed(
        &mut self,
        snap: &PipelineSnapshot,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
        rec: &DecisionRecord,
    ) -> Option<OppIndex> {
        if self.peek_kind(snap) != rec.kind {
            return None;
        }
        let required = f64::from_bits(rec.required_bits);
        Some(self.decide_core(snap, table, limits, cur, Some(required)).0)
    }

    /// A Playing-phase decision for a demand value the caller recomputed
    /// from cached items — the steady-tick fast path. Between pipeline
    /// events only the clock (and the in-flight frame's progress) moves,
    /// so the session re-derives `required` from its cached demand list
    /// and skips the snapshot/predictor walk entirely. This method is
    /// [`decide_core`](Self::decide_core) specialised to
    /// `phase == Playing` with a non-empty demand list: every state
    /// transition — the decision counter, panic-window bookkeeping,
    /// selector hysteresis, the energy floor — runs identically, so a
    /// session interleaving fast and full decisions is bit-identical to
    /// one taking full decisions throughout.
    ///
    /// Returns `(index, branch tag, required-for-record)` exactly as the
    /// full decision would have recorded them.
    pub(crate) fn decide_steady(
        &mut self,
        now: SimTime,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
        required: f64,
    ) -> (OppIndex, u8, f64) {
        self.decisions += 1;
        if self.config.panic_recovery {
            if self.breach_pending {
                self.breach_pending = false;
                self.panics += 1;
                self.panic_until = Some(now + self.config.panic_hold);
            }
            if let Some(until) = self.panic_until {
                // Playing-phase by construction, so the Ended exemption
                // of the full path cannot apply here.
                if now < until {
                    return (limits.max_index, decision_kind::STRUCTURAL_MAX, 0.0);
                }
                self.panic_until = None;
            }
        }
        let idx = self.selector.select(table, limits, cur, required);
        (
            self.apply_floor(idx, true, limits),
            decision_kind::DEMAND,
            required,
        )
    }

    /// Pure mirror of [`decide_core`](Self::decide_core)'s control flow:
    /// which branch would fire for this snapshot, given current governor
    /// state, without mutating anything.
    fn peek_kind(&self, snap: &PipelineSnapshot) -> u8 {
        if self.config.panic_recovery {
            let until = if self.breach_pending {
                Some(snap.now + self.config.panic_hold)
            } else {
                self.panic_until
            };
            if let Some(until) = until {
                if snap.now < until && snap.phase != PlaybackPhase::Ended {
                    return decision_kind::STRUCTURAL_MAX;
                }
            }
        }
        match snap.phase {
            PlaybackPhase::Startup | PlaybackPhase::Rebuffering => {
                if self.config.race_on_fill {
                    decision_kind::STRUCTURAL_MAX
                } else {
                    decision_kind::PACED_FILL
                }
            }
            PlaybackPhase::Ended => decision_kind::ENDED_MIN,
            PlaybackPhase::Playing => {
                if Self::playing_has_demand(&self.config, snap) {
                    decision_kind::DEMAND
                } else {
                    decision_kind::IDLE
                }
            }
        }
    }

    /// Whether the Playing branch's demand list would be non-empty:
    /// exactly when an in-flight decode exists or the lookahead window
    /// admits at least one waiting frame (mirrors
    /// [`demand_into`](Self::demand_into)).
    fn playing_has_demand(config: &EavsConfig, snap: &PipelineSnapshot) -> bool {
        snap.in_flight.is_some() || (config.lookahead > 0 && !snap.upcoming.is_empty())
    }

    /// The full decision: returns the chosen index, the branch tag and
    /// the computed demand in Hz (0.0 for structural branches). When
    /// `required_override` is set, the demand computation — the only
    /// part of a decision whose cost scales with the lookahead — is
    /// skipped and the override used verbatim; every state transition
    /// still runs.
    fn decide_core(
        &mut self,
        snap: &PipelineSnapshot,
        table: &OppTable,
        limits: PolicyLimits,
        cur: OppIndex,
        required_override: Option<f64>,
    ) -> (OppIndex, u8, f64) {
        self.decisions += 1;
        if self.config.panic_recovery {
            if self.breach_pending {
                self.breach_pending = false;
                self.panics += 1;
                self.panic_until = Some(snap.now + self.config.panic_hold);
            }
            if let Some(until) = self.panic_until {
                if snap.now < until && snap.phase != PlaybackPhase::Ended {
                    // Re-race: clear the backlog at full speed; the
                    // selector's hysteresis decays the frequency back to
                    // the critical-speed floor once the window closes.
                    return (limits.max_index, decision_kind::STRUCTURAL_MAX, 0.0);
                }
                self.panic_until = None;
            }
        }
        match snap.phase {
            PlaybackPhase::Startup | PlaybackPhase::Rebuffering => {
                if self.config.race_on_fill {
                    (limits.max_index, decision_kind::STRUCTURAL_MAX, 0.0)
                } else {
                    // Ablation: treat filling like steady state with a
                    // synthetic near-term deadline one frame period out.
                    let required = required_override.unwrap_or_else(|| {
                        let demand: f64 = snap
                            .upcoming
                            .iter()
                            .take(self.config.lookahead)
                            .map(|m| self.predictor.predict(*m).get())
                            .sum();
                        let window = snap.frame_period * (self.config.lookahead as u64).max(1);
                        demand / window.as_secs_f64()
                    });
                    let idx = self.selector.select(table, limits, cur, required);
                    (
                        self.apply_floor(idx, !snap.upcoming.is_empty(), limits),
                        decision_kind::PACED_FILL,
                        required,
                    )
                }
            }
            PlaybackPhase::Ended => (limits.min_index, decision_kind::ENDED_MIN, 0.0),
            PlaybackPhase::Playing => {
                if !Self::playing_has_demand(&self.config, snap) {
                    // Pipeline drained of work (decoded queue full or end
                    // of stream): any frequency idles equally well.
                    let idx = self.selector.select(table, limits, cur, 0.0);
                    (idx, decision_kind::IDLE, 0.0)
                } else {
                    let required = match required_override {
                        Some(r) => r,
                        None => {
                            let mut items = std::mem::take(&mut self.demand_scratch);
                            self.demand_into(snap, &mut items);
                            debug_assert!(
                                !items.is_empty(),
                                "playing_has_demand mirrors demand_into"
                            );
                            let r = required_hz(snap.now, &items);
                            self.demand_scratch = items;
                            r
                        }
                    };
                    let idx = self.selector.select(table, limits, cur, required);
                    (
                        self.apply_floor(idx, true, limits),
                        decision_kind::DEMAND,
                        required,
                    )
                }
            }
        }
    }

    /// Hashes the governor's identity into `fp` for session memoization:
    /// the full configuration, the energy floor, and the predictor. A
    /// governor that has already taken decisions (selector hysteresis,
    /// predictor history) is opaque.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.decisions > 0 {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_f64(self.config.margin);
        fp.write_u32(self.config.down_hysteresis);
        fp.write_usize(self.config.lookahead);
        fp.write_bool(self.config.race_on_fill);
        fp.write_bool(self.config.energy_floor);
        fp.write_u64(self.config.decision_interval.as_nanos());
        fp.write_bool(self.config.panic_recovery);
        fp.write_f64(self.config.panic_breach_factor);
        fp.write_u64(self.config.panic_hold.as_nanos());
        fp.write_usize(self.floor_index);
        self.predictor.fingerprint(fp);
    }

    /// Hashes only the configuration that shapes decision *instants* and
    /// demand *values*: lookahead window, decision interval and the
    /// predictor. Everything else — margin, hysteresis, fill race, the
    /// energy floor and the panic knobs — post-processes a computed
    /// demand and runs live during replay, so two governors differing
    /// only in those knobs share a replay prefix and can inject each
    /// other's recorded demand until their chosen indices diverge. A
    /// governor with history is opaque, exactly as in
    /// [`fingerprint`](Self::fingerprint).
    pub fn fingerprint_replay_prefix(&self, fp: &mut Fingerprinter) {
        if self.decisions > 0 {
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_usize(self.config.lookahead);
        fp.write_u64(self.config.decision_interval.as_nanos());
        self.predictor.fingerprint(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Ewma, LastValue};
    use eavs_video::frame::FrameType;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn meta(size: u32) -> FrameMeta {
        FrameMeta {
            index: 0,
            frame_type: FrameType::P,
            size_bytes: size,
        }
    }

    /// A governor whose predictor has been trained to a constant value.
    fn trained(mcycles: f64, config: EavsConfig) -> EavsGovernor {
        let mut g = EavsGovernor::new(Box::new(LastValue::new()), config);
        g.observe_decode(meta(1000), Cycles::from_mega(mcycles));
        g
    }

    fn snapshot(
        decoded: usize,
        in_flight: Option<InFlightMeta>,
        upcoming: usize,
    ) -> PipelineSnapshot {
        PipelineSnapshot {
            now: SimTime::from_millis(100),
            phase: PlaybackPhase::Playing,
            next_vsync: SimTime::from_millis(110),
            frame_period: SimDuration::from_millis(33),
            decoded_len: decoded,
            in_flight,
            upcoming: vec![meta(1000); upcoming],
        }
    }

    #[test]
    fn races_while_filling() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = trained(10.0, EavsConfig::default());
        let mut snap = snapshot(0, None, 4);
        snap.phase = PlaybackPhase::Startup;
        assert_eq!(g.decide(&snap, &tbl, limits, 0), 3);
        snap.phase = PlaybackPhase::Rebuffering;
        assert_eq!(g.decide(&snap, &tbl, limits, 0), 3);
    }

    #[test]
    fn ablation_no_race_paces_fill() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = trained(
            10.0,
            EavsConfig {
                race_on_fill: false,
                margin: 0.0,
                down_hysteresis: 1,
                ..EavsConfig::default()
            },
        );
        let mut snap = snapshot(0, None, 8);
        snap.phase = PlaybackPhase::Startup;
        let idx = g.decide(&snap, &tbl, limits, 0);
        // 8 × 10 Mcycles over 8 × 33 ms ≈ 303 MHz -> lowest OPP.
        assert_eq!(idx, 0);
    }

    #[test]
    fn deep_decoded_queue_lets_cpu_slow_down() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let cfg = EavsConfig {
            margin: 0.0,
            down_hysteresis: 1,
            ..EavsConfig::default()
        };
        // 20 Mcycles per frame.
        let mut g_shallow = trained(20.0, cfg);
        let mut g_deep = trained(20.0, cfg);
        let inflight = Some(InFlightMeta {
            meta: meta(1000),
            executed: Cycles::ZERO,
        });
        // Shallow queue: in-flight due at next vsync (10 ms away).
        let shallow = snapshot(0, inflight, 4);
        // Deep queue: 4 decoded frames of slack.
        let deep = snapshot(4, inflight, 4);
        let idx_shallow = g_shallow.decide(&shallow, &tbl, limits, 3);
        let idx_deep = g_deep.decide(&deep, &tbl, limits, 3);
        assert!(
            idx_deep < idx_shallow,
            "slack must lower the chosen OPP ({idx_deep} !< {idx_shallow})"
        );
    }

    #[test]
    fn overdue_deadline_forces_max() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = trained(20.0, EavsConfig::default());
        let mut snap = snapshot(
            0,
            Some(InFlightMeta {
                meta: meta(1000),
                executed: Cycles::ZERO,
            }),
            2,
        );
        snap.next_vsync = snap.now; // due right now
        assert_eq!(g.decide(&snap, &tbl, limits, 0), 3);
    }

    #[test]
    fn executed_cycles_reduce_demand() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let cfg = EavsConfig {
            margin: 0.0,
            down_hysteresis: 1,
            lookahead: 0,
            ..EavsConfig::default()
        };
        let mut fresh = trained(40.0, cfg);
        let mut nearly_done = trained(40.0, cfg);
        let snap_fresh = snapshot(
            1,
            Some(InFlightMeta {
                meta: meta(1000),
                executed: Cycles::ZERO,
            }),
            0,
        );
        let snap_done = snapshot(
            1,
            Some(InFlightMeta {
                meta: meta(1000),
                executed: Cycles::from_mega(38.0),
            }),
            0,
        );
        let a = fresh.decide(&snap_fresh, &tbl, limits, 3);
        let b = nearly_done.decide(&snap_done, &tbl, limits, 3);
        assert!(b <= a, "{b} <= {a}");
        assert_eq!(b, 0, "2 Mcycles in 43 ms needs only the floor");
    }

    #[test]
    fn overrun_assumes_residual_work() {
        let g = trained(10.0, EavsConfig::default());
        let snap = snapshot(
            0,
            Some(InFlightMeta {
                meta: meta(1000),
                executed: Cycles::from_mega(15.0), // beyond the prediction
            }),
            0,
        );
        let items = g.demand(&snap);
        assert_eq!(items.len(), 1);
        assert!((items[0].cycles.mega() - 1.0).abs() < 1e-9, "10% residual");
    }

    #[test]
    fn demand_deadlines_are_vsync_spaced() {
        let g = trained(10.0, EavsConfig::default());
        let snap = snapshot(
            2,
            Some(InFlightMeta {
                meta: meta(1000),
                executed: Cycles::ZERO,
            }),
            3,
        );
        let items = g.demand(&snap);
        assert_eq!(items.len(), 4);
        // In-flight covers vsync + 2 periods; then consecutive periods.
        let base = SimTime::from_millis(110);
        assert_eq!(items[0].deadline, base + SimDuration::from_millis(66));
        assert_eq!(items[1].deadline, base + SimDuration::from_millis(99));
        assert_eq!(items[3].deadline, base + SimDuration::from_millis(165));
    }

    #[test]
    fn lookahead_truncates_demand() {
        let g = trained(
            10.0,
            EavsConfig {
                lookahead: 2,
                ..EavsConfig::default()
            },
        );
        let snap = snapshot(0, None, 10);
        assert_eq!(g.demand(&snap).len(), 2);
    }

    #[test]
    fn ended_drops_to_floor() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = trained(10.0, EavsConfig::default());
        let mut snap = snapshot(0, None, 0);
        snap.phase = PlaybackPhase::Ended;
        assert_eq!(g.decide(&snap, &tbl, limits, 3), 0);
    }

    #[test]
    fn prediction_breach_opens_panic_window() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        // Train with the cold-start estimate itself (5 Mcycles for a
        // 1000-byte frame) so the training observation is not a breach.
        let mut g = trained(5.0, EavsConfig::resilient());
        // Deep slack: absent a panic this snapshot picks the lowest OPP.
        let calm = snapshot(4, None, 1);
        assert_eq!(g.decide(&calm, &tbl, limits, 0), 0);
        assert_eq!(g.panics(), 0);
        // A frame costing 5x its prediction breaches the 1.25x factor.
        g.observe_decode(meta(1000), Cycles::from_mega(25.0));
        assert_eq!(g.decide(&calm, &tbl, limits, 0), 3, "panic races at max");
        assert_eq!(g.panics(), 1);
        // Within the hold window the max OPP is pinned...
        let mut soon = calm.clone();
        soon.now = calm.now + SimDuration::from_millis(100);
        assert_eq!(g.decide(&soon, &tbl, limits, 3), 3);
        // ...and once it expires the governor decays back down.
        let mut later = calm.clone();
        later.now = calm.now + SimDuration::from_millis(400);
        later.next_vsync = later.now + SimDuration::from_millis(10);
        let mut cur = 3;
        for _ in 0..10 {
            cur = g.decide(&later, &tbl, limits, cur);
        }
        assert!(cur < 3, "panic must decay");
        assert_eq!(g.panics(), 1, "one breach, one panic");
    }

    #[test]
    fn rebuffer_notification_triggers_panic() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = trained(5.0, EavsConfig::resilient());
        let calm = snapshot(4, None, 1);
        assert_eq!(g.decide(&calm, &tbl, limits, 0), 0);
        g.notify_rebuffer();
        assert_eq!(g.decide(&calm, &tbl, limits, 0), 3);
        assert_eq!(g.panics(), 1);
    }

    #[test]
    fn panic_recovery_off_ignores_breaches_and_rebuffers() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = trained(10.0, EavsConfig::default());
        let calm = snapshot(4, None, 1);
        g.observe_decode(meta(1000), Cycles::from_mega(100.0));
        g.notify_rebuffer();
        // LastValue now predicts 100 Mcycles; with 4 frames of slack the
        // demand still fits a low OPP, and no panic pins the max.
        assert!(g.decide(&calm, &tbl, limits, 0) < 3);
        assert_eq!(g.panics(), 0);
    }

    #[test]
    fn works_with_any_predictor() {
        let tbl = table();
        let limits = PolicyLimits::full(&tbl);
        let mut g = EavsGovernor::new(Box::new(Ewma::default()), EavsConfig::default());
        g.observe_decode(meta(1000), Cycles::from_mega(15.0));
        let snap = snapshot(1, None, 4);
        let idx = g.decide(&snap, &tbl, limits, 0);
        assert!(idx <= 3);
        assert_eq!(g.predictor_name(), "ewma");
        assert_eq!(g.decisions(), 1);
    }
}
