//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] describes a *population*: weighted mixes of devices,
//! networks, content, titles and ABR policies, a governor matrix, an
//! arrival window and the histogram shapes the aggregates use. The spec is
//! plain data with a stable fingerprint, so a campaign is reproducible
//! from its spec alone and a checkpoint can refuse to resume against a
//! different spec.

use eavs_cpu::soc::SocModel;
use eavs_power::DevicePowerModel;
use eavs_sim::fingerprint::{Fingerprint, Fingerprinter};
use eavs_trace::content::ContentProfile;
use eavs_trace::net_gen::NetworkProfile;

/// A network condition drawn for one session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkChoice {
    /// Constant bandwidth in Mbit/s (the lab-conditions baseline).
    Constant(f64),
    /// A generated trace from one of the measurement-derived profiles;
    /// the per-session trace seed comes from the campaign's trace pool.
    Profile(NetworkProfile),
}

impl NetworkChoice {
    /// Short stable name, used in fingerprints and labels.
    pub fn name(&self) -> String {
        match self {
            NetworkChoice::Constant(mbps) => format!("constant:{mbps}"),
            NetworkChoice::Profile(p) => p.name().to_owned(),
        }
    }
}

/// The ABR policy a session streams under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbrChoice {
    /// Fixed single-representation manifest at the title's bitrate.
    Fixed,
    /// Throughput-based ABR over the standard ladder.
    Rate,
    /// Buffer-based ABR over the standard ladder.
    Buffer,
}

impl AbrChoice {
    /// Short stable name, used in fingerprints and labels.
    pub fn name(&self) -> &'static str {
        match self {
            AbrChoice::Fixed => "fixed",
            AbrChoice::Rate => "rate",
            AbrChoice::Buffer => "buffer",
        }
    }
}

/// One title in the content catalog: the encode a session streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TitleSpec {
    /// Bitrate of the (single-representation) encode, kbps.
    pub bitrate_kbps: u32,
    /// Luma width.
    pub width: u32,
    /// Luma height.
    pub height: u32,
    /// Stream length in seconds.
    pub duration_s: u64,
    /// Frames per second.
    pub fps: u32,
}

impl TitleSpec {
    /// Stable encode key for prior aggregation: everything that shapes
    /// per-frame decode cost (bitrate, resolution, fps) — but not the
    /// stream length, so priors learned on clips transfer to full
    /// titles of the same encode. Whitespace-free for line formats.
    pub fn key(&self) -> String {
        format!(
            "{}kbps-{}x{}@{}",
            self.bitrate_kbps, self.width, self.height, self.fps
        )
    }
}

/// Histogram shape: `(lo, hi, bins)` for one aggregated metric.
pub type HistShape = (f64, f64, usize);

/// A declarative fleet campaign.
///
/// All mixes are weighted; weights need not sum to 1 (they are
/// normalized at draw time). Every session runs once under *each*
/// governor in `governors` — a paired population, so per-governor
/// distributions are directly comparable.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (labels, table titles, CSV ids).
    pub name: String,
    /// Master seed: every per-session draw is keyed on
    /// `(seed, session_id)` coordinates.
    pub seed: u64,
    /// Number of sessions in the population.
    pub sessions: u64,
    /// Sessions per shard (the unit of scheduling, checkpointing and
    /// memory accounting).
    pub shard_size: u64,
    /// Governor matrix: each session runs under every listed governor.
    /// Names are the baseline set plus `eavs` and `eavs-panic`.
    pub governors: Vec<String>,
    /// Device mix.
    pub devices: Vec<(SocModel, f64)>,
    /// Network mix.
    pub networks: Vec<(NetworkChoice, f64)>,
    /// Content-profile mix (decode statistics).
    pub contents: Vec<(ContentProfile, f64)>,
    /// Title catalog (encodes).
    pub titles: Vec<(TitleSpec, f64)>,
    /// ABR mix.
    pub abrs: Vec<(AbrChoice, f64)>,
    /// Distinct trace seeds per network profile. A small pool means many
    /// sessions share a trace, which both mirrors reality (popular
    /// routes) and lets the content-addressed session cache deduplicate.
    pub trace_pool: u64,
    /// Distinct workload seeds. Same dedup logic as `trace_pool`.
    pub seed_pool: u64,
    /// Arrival window in seconds: sessions arrive uniformly over
    /// `[0, span)` (a Poisson process conditioned on N).
    pub arrival_span_s: u64,
    /// Whole-device power model attached to every session of the
    /// population. Accounting is post-hoc, so any model leaves the
    /// simulated timelines untouched; the default [`DevicePowerModel::none`]
    /// additionally leaves every report byte-identical.
    pub power: DevicePowerModel,
    /// Histogram shape for CPU energy (joules).
    pub energy_hist: HistShape,
    /// Histogram shape for the composite QoE score.
    pub qoe_hist: HistShape,
    /// Histogram shape for startup delay (milliseconds).
    pub startup_hist_ms: HistShape,
}

impl CampaignSpec {
    /// The small CI campaign: 200 sessions of short clips under
    /// `ondemand` vs `eavs`, sized to finish in seconds.
    pub fn smoke() -> Self {
        CampaignSpec {
            name: "smoke".to_owned(),
            seed: 42,
            sessions: 200,
            shard_size: 25,
            governors: vec!["ondemand".to_owned(), "eavs".to_owned()],
            devices: vec![
                (SocModel::Flagship2016, 0.6),
                (SocModel::MidRange, 0.3),
                (SocModel::BigLittle2013, 0.1),
            ],
            networks: vec![
                (NetworkChoice::Constant(20.0), 0.5),
                (NetworkChoice::Profile(NetworkProfile::WifiHome), 0.3),
                (NetworkChoice::Profile(NetworkProfile::LteDrive), 0.2),
            ],
            contents: vec![
                (ContentProfile::Film, 0.5),
                (ContentProfile::Animation, 0.3),
                (ContentProfile::Sport, 0.2),
            ],
            titles: vec![
                (
                    TitleSpec {
                        bitrate_kbps: 6_000,
                        width: 1920,
                        height: 1080,
                        duration_s: 10,
                        fps: 30,
                    },
                    0.7,
                ),
                (
                    TitleSpec {
                        bitrate_kbps: 3_000,
                        width: 1280,
                        height: 720,
                        duration_s: 10,
                        fps: 30,
                    },
                    0.3,
                ),
            ],
            abrs: vec![(AbrChoice::Fixed, 0.7), (AbrChoice::Buffer, 0.3)],
            trace_pool: 4,
            seed_pool: 8,
            arrival_span_s: 3_600,
            power: DevicePowerModel::none(),
            energy_hist: (0.0, 30.0, 60),
            qoe_hist: (-100.0, 10.0, 110),
            startup_hist_ms: (0.0, 5_000.0, 100),
        }
    }

    /// The population campaign behind F26: a heterogeneous 2016-era
    /// fleet (three SoC tiers, wifi/LTE/HSPA mix, full content catalog)
    /// streaming 30 s clips under the headline governor comparison.
    pub fn global() -> Self {
        CampaignSpec {
            name: "global".to_owned(),
            seed: 42,
            sessions: 10_000,
            shard_size: 250,
            governors: vec![
                "performance".to_owned(),
                "ondemand".to_owned(),
                "interactive".to_owned(),
                "schedutil".to_owned(),
                "eavs".to_owned(),
            ],
            devices: vec![
                (SocModel::Flagship2016, 0.35),
                (SocModel::MidRange, 0.45),
                (SocModel::BigLittle2013, 0.20),
            ],
            networks: vec![
                (NetworkChoice::Constant(20.0), 0.30),
                (NetworkChoice::Profile(NetworkProfile::WifiHome), 0.30),
                (NetworkChoice::Profile(NetworkProfile::LteDrive), 0.25),
                (NetworkChoice::Profile(NetworkProfile::HspaTram), 0.15),
            ],
            contents: vec![
                (ContentProfile::Film, 0.45),
                (ContentProfile::Animation, 0.30),
                (ContentProfile::Sport, 0.25),
            ],
            titles: vec![
                (
                    TitleSpec {
                        bitrate_kbps: 6_000,
                        width: 1920,
                        height: 1080,
                        duration_s: 30,
                        fps: 30,
                    },
                    0.5,
                ),
                (
                    TitleSpec {
                        bitrate_kbps: 3_000,
                        width: 1280,
                        height: 720,
                        duration_s: 30,
                        fps: 30,
                    },
                    0.35,
                ),
                (
                    TitleSpec {
                        bitrate_kbps: 1_500,
                        width: 854,
                        height: 480,
                        duration_s: 30,
                        fps: 30,
                    },
                    0.15,
                ),
            ],
            abrs: vec![(AbrChoice::Fixed, 0.6), (AbrChoice::Buffer, 0.4)],
            trace_pool: 4,
            seed_pool: 8,
            arrival_span_s: 3_600,
            power: DevicePowerModel::none(),
            energy_hist: (0.0, 60.0, 120),
            qoe_hist: (-100.0, 10.0, 110),
            startup_hist_ms: (0.0, 5_000.0, 100),
        }
    }

    /// Looks up a named preset.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "global" => Some(Self::global()),
            _ => None,
        }
    }

    /// Number of shards the population splits into.
    pub fn num_shards(&self) -> u64 {
        self.sessions.div_ceil(self.shard_size)
    }

    /// The session-id range `[start, end)` of shard `index`.
    pub fn shard_range(&self, index: u64) -> (u64, u64) {
        let start = index * self.shard_size;
        (start, (start + self.shard_size).min(self.sessions))
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on empty mixes, bad weights or
    /// degenerate sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.sessions == 0 {
            return Err("campaign needs at least one session".to_owned());
        }
        if self.shard_size == 0 {
            return Err("shard size must be positive".to_owned());
        }
        if self.governors.is_empty() {
            return Err("campaign needs at least one governor".to_owned());
        }
        for name in &self.governors {
            crate::campaign::governor_choice(name)?;
        }
        fn check_mix<T>(what: &str, mix: &[(T, f64)]) -> Result<(), String> {
            if mix.is_empty() {
                return Err(format!("empty {what} mix"));
            }
            let total: f64 = mix.iter().map(|(_, w)| *w).sum();
            if mix.iter().any(|(_, w)| !w.is_finite() || *w < 0.0) || total <= 0.0 {
                return Err(format!(
                    "{what} mix weights must be non-negative with a positive sum"
                ));
            }
            Ok(())
        }
        check_mix("device", &self.devices)?;
        check_mix("network", &self.networks)?;
        check_mix("content", &self.contents)?;
        check_mix("title", &self.titles)?;
        check_mix("abr", &self.abrs)?;
        if self
            .titles
            .iter()
            .any(|(t, _)| t.duration_s == 0 || t.fps == 0)
        {
            return Err("titles need a positive duration and fps".to_owned());
        }
        if self.trace_pool == 0 || self.seed_pool == 0 {
            return Err("trace and seed pools must be positive".to_owned());
        }
        if self.arrival_span_s == 0 {
            return Err("arrival span must be positive".to_owned());
        }
        Ok(())
    }

    /// A stable 128-bit digest of every campaign input. Checkpoints embed
    /// it so a resume against a different spec is rejected instead of
    /// silently merging incompatible aggregates.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new("eavs-fleet-campaign/v1");
        fp.write_str(&self.name);
        fp.write_u64(self.seed);
        fp.write_u64(self.sessions);
        fp.write_u64(self.shard_size);
        fp.write_usize(self.governors.len());
        for g in &self.governors {
            fp.write_str(g);
        }
        fp.write_usize(self.devices.len());
        for (soc, w) in &self.devices {
            fp.write_str(soc.name());
            fp.write_f64(*w);
        }
        fp.write_usize(self.networks.len());
        for (net, w) in &self.networks {
            fp.write_str(&net.name());
            fp.write_f64(*w);
        }
        fp.write_usize(self.contents.len());
        for (c, w) in &self.contents {
            fp.write_str(c.name());
            fp.write_f64(*w);
        }
        fp.write_usize(self.titles.len());
        for (t, w) in &self.titles {
            fp.write_u32(t.bitrate_kbps);
            fp.write_u32(t.width);
            fp.write_u32(t.height);
            fp.write_u64(t.duration_s);
            fp.write_u32(t.fps);
            fp.write_f64(*w);
        }
        fp.write_usize(self.abrs.len());
        for (a, w) in &self.abrs {
            fp.write_str(a.name());
            fp.write_f64(*w);
        }
        fp.write_u64(self.trace_pool);
        fp.write_u64(self.seed_pool);
        fp.write_u64(self.arrival_span_s);
        // Same tag convention as the session fingerprint: the none()
        // model digests like no model at all (the zero-power no-op), any
        // modeled component splits the campaign.
        if self.power.is_none() {
            fp.write_u8(0);
        } else {
            fp.write_u8(1);
            self.power.fingerprint(&mut fp);
        }
        for (lo, hi, bins) in [self.energy_hist, self.qoe_hist, self.startup_hist_ms] {
            fp.write_f64(lo);
            fp.write_f64(hi);
            fp.write_usize(bins);
        }
        fp.finish().expect("campaign specs are never opaque")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for name in ["smoke", "global"] {
            let spec = CampaignSpec::preset(name).unwrap();
            spec.validate().unwrap();
            assert!(spec.num_shards() >= 1);
        }
        assert!(CampaignSpec::preset("galactic").is_none());
    }

    #[test]
    fn shard_ranges_partition_sessions() {
        let mut spec = CampaignSpec::smoke();
        spec.sessions = 103;
        spec.shard_size = 25;
        assert_eq!(spec.num_shards(), 5);
        let mut covered = 0;
        for i in 0..spec.num_shards() {
            let (start, end) = spec.shard_range(i);
            assert_eq!(start, covered);
            covered = end;
        }
        assert_eq!(covered, 103);
    }

    #[test]
    fn fingerprint_is_sensitive_to_inputs() {
        let a = CampaignSpec::smoke();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 43;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.governors.push("performance".to_owned());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.energy_hist = (0.0, 31.0, 60);
        assert_ne!(a.fingerprint(), d.fingerprint());
        // A powered campaign is a different campaign; the explicit
        // none() model is the same one.
        let mut e = a.clone();
        e.power = DevicePowerModel::phone();
        assert_ne!(a.fingerprint(), e.fingerprint());
        let mut f = a.clone();
        f.power = DevicePowerModel::none();
        assert_eq!(a.fingerprint(), f.fingerprint());
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut s = CampaignSpec::smoke();
        s.sessions = 0;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke();
        s.governors = vec!["warp-speed".to_owned()];
        assert!(s.validate().unwrap_err().contains("unknown governor"));
        let mut s = CampaignSpec::smoke();
        s.devices.clear();
        assert!(s.validate().unwrap_err().contains("device"));
        let mut s = CampaignSpec::smoke();
        s.networks[0].1 = -1.0;
        s.networks.truncate(1);
        assert!(s.validate().is_err());
    }
}
