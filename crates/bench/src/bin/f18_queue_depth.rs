//! Regenerates experiment `f18_queue_depth` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f18_queue_depth")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
