//! Full governor comparison across content types.
//!
//! Streams the same 60-second video as animation, film and sport content
//! under every governor (seven Linux baselines + EAVS) and prints the
//! energy/QoE matrix — a command-line version of the paper's headline
//! comparison (figures F5/F6).
//!
//! ```text
//! cargo run --release --example governor_comparison
//! ```

use eavs::metrics::table::Table;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::tracegen::content::ContentProfile;
use eavs::video::manifest::Manifest;
use eavs_governors::{by_name, BASELINE_NAMES};

fn governor(name: &str) -> GovernorChoice {
    if name == "eavs" {
        GovernorChoice::Eavs(EavsGovernor::new(
            Box::new(Hybrid::default()),
            EavsConfig::default(),
        ))
    } else {
        GovernorChoice::Baseline(by_name(name).expect("known baseline"))
    }
}

fn main() {
    let mut names: Vec<&str> = BASELINE_NAMES.to_vec();
    names.push("eavs");

    for content in ContentProfile::ALL {
        let mut table = Table::new(&[
            "governor",
            "cpu (J)",
            "vs ondemand",
            "miss %",
            "mean freq",
            "session (s)",
        ]);
        table.set_title(format!("60 s of 1080p30 {content} on flagship2016"));
        let mut ondemand_joules = 0.0;
        let mut rows = Vec::new();
        for name in &names {
            let report = StreamingSession::builder(governor(name))
                .manifest(Manifest::single(
                    6_000,
                    1920,
                    1080,
                    SimDuration::from_secs(60),
                    30,
                ))
                .content(content)
                .seed(42)
                .run();
            if *name == "ondemand" {
                ondemand_joules = report.cpu_joules();
            }
            rows.push((*name, report));
        }
        for (name, report) in rows {
            let delta = if ondemand_joules > 0.0 {
                format!(
                    "{:+.1}%",
                    (report.cpu_joules() / ondemand_joules - 1.0) * 100.0
                )
            } else {
                "-".to_owned()
            };
            table.row(&[
                name,
                &format!("{:.2}", report.cpu_joules()),
                &delta,
                &format!("{:.2}", report.qoe.deadline_miss_rate() * 100.0),
                &report.mean_freq.to_string(),
                &format!("{:.1}", report.session_length.as_secs_f64()),
            ]);
        }
        println!("{}\n", table.render());
    }
}
