//! Helpers for periodic activities and restartable timeouts.
//!
//! These are bookkeeping helpers only: they compute *when* things should
//! happen; the owner is responsible for scheduling events at those times.

use crate::time::{SimDuration, SimTime};

/// A fixed-period tick schedule (e.g. vsync, governor sampling).
///
/// ```
/// use eavs_sim::time::{SimDuration, SimTime};
/// use eavs_sim::timer::Periodic;
///
/// let mut vsync = Periodic::starting_at(SimTime::from_millis(100), SimDuration::from_millis(16));
/// assert_eq!(vsync.next(), SimTime::from_millis(100));
/// assert_eq!(vsync.advance(), SimTime::from_millis(100));
/// assert_eq!(vsync.next(), SimTime::from_millis(116));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Periodic {
    next: SimTime,
    period: SimDuration,
    ticks: u64,
}

impl Periodic {
    /// A schedule whose first tick is at `start` and repeats every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn starting_at(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "periodic timer with zero period");
        Periodic {
            next: start,
            period,
            ticks: 0,
        }
    }

    /// The time of the next tick.
    pub fn next(&self) -> SimTime {
        self.next
    }

    /// The tick period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Number of ticks consumed so far.
    pub fn ticks_elapsed(&self) -> u64 {
        self.ticks
    }

    /// Consumes the next tick, returning its time and advancing the schedule.
    pub fn advance(&mut self) -> SimTime {
        let t = self.next;
        self.next += self.period;
        self.ticks += 1;
        t
    }

    /// The time of the `n`-th tick from now (0 = the next one).
    pub fn tick_after(&self, n: u64) -> SimTime {
        self.next + self.period * n
    }
}

/// An inactivity timeout that restarts on each activity, as used by radio
/// resource control (RRC) demotion timers.
///
/// ```
/// use eavs_sim::time::{SimDuration, SimTime};
/// use eavs_sim::timer::InactivityTimer;
///
/// let mut t1 = InactivityTimer::new(SimDuration::from_secs(4));
/// t1.touch(SimTime::from_secs(10));
/// assert_eq!(t1.deadline(), Some(SimTime::from_secs(14)));
/// t1.touch(SimTime::from_secs(12));
/// assert_eq!(t1.deadline(), Some(SimTime::from_secs(16)));
/// assert!(t1.expired_by(SimTime::from_secs(16)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InactivityTimer {
    timeout: SimDuration,
    deadline: Option<SimTime>,
}

impl InactivityTimer {
    /// Creates a stopped timer with the given timeout.
    pub fn new(timeout: SimDuration) -> Self {
        InactivityTimer {
            timeout,
            deadline: None,
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Restarts the timer at `now`.
    pub fn touch(&mut self, now: SimTime) {
        self.deadline = Some(now + self.timeout);
    }

    /// Stops the timer.
    pub fn clear(&mut self) {
        self.deadline = None;
    }

    /// The current expiry deadline, if running.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// `true` if the timer is running and `now` has reached its deadline.
    pub fn expired_by(&self, now: SimTime) -> bool {
        matches!(self.deadline, Some(d) if now >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_sequence() {
        let mut p = Periodic::starting_at(SimTime::ZERO, SimDuration::from_millis(10));
        let ticks: Vec<SimTime> = (0..4).map(|_| p.advance()).collect();
        assert_eq!(
            ticks,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
        assert_eq!(p.ticks_elapsed(), 4);
        assert_eq!(p.tick_after(2), SimTime::from_millis(60));
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_rejected() {
        let _ = Periodic::starting_at(SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn inactivity_restart_and_expiry() {
        let mut t = InactivityTimer::new(SimDuration::from_secs(2));
        assert_eq!(t.deadline(), None);
        assert!(!t.expired_by(SimTime::from_secs(100)));
        t.touch(SimTime::from_secs(1));
        assert!(!t.expired_by(SimTime::from_secs(2)));
        assert!(t.expired_by(SimTime::from_secs(3)));
        t.touch(SimTime::from_secs(2));
        assert!(!t.expired_by(SimTime::from_secs(3)));
        t.clear();
        assert_eq!(t.deadline(), None);
    }
}
