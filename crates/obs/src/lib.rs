//! Deterministic observability layer for EAVS sessions and fleets.
//!
//! The simulator's whole argument is a timeline argument — frames must
//! finish *by* their vsync deadline, not early (wasted energy) and not
//! late (QoE loss) — yet until this crate existed only end-of-run
//! aggregates left the session. `eavs-obs` adds the three observability
//! primitives every production stack carries, without compromising the
//! repo's determinism contract:
//!
//! - **Event tracing** ([`event::TraceEvent`]) behind a [`sink::TraceSink`]
//!   trait. Sessions emit structured events at every hot-path decision
//!   point; sinks choose what to do with them. [`sink::NullSink`]
//!   discards everything (and the emit sites are gated so event
//!   construction itself is skipped when no sink is attached),
//!   [`sink::RingSink`] keeps a bounded in-memory timeline dumpable as
//!   JSONL or Chrome trace-event JSON (Perfetto-loadable), and
//!   [`sink::CounterSink`] folds event kinds into the existing
//!   `eavs-metrics` counter type.
//! - **Phase profiling** ([`profile::PhaseProfile`]): per-phase
//!   (download / decode / display / governor) simulated-time and
//!   wall-time breakdowns, cheap enough to leave on in benches.
//! - **Prometheus text exposition** ([`prom::PromWriter`]): fleet
//!   campaigns render shard progress, cache hit rates, fault counters
//!   and per-governor energy/QoE histograms in the standard
//!   text-exposition format for scraping.
//!
//! # Determinism rules
//!
//! Traces are part of the reproducibility surface: the same seeded
//! session must produce **byte-identical** JSONL regardless of
//! `EAVS_JOBS`, host, or wall-clock. To keep that true:
//!
//! 1. Events carry **simulated** time only. Wall-clock never enters an
//!    event or a serialized trace (wall time appears only in
//!    [`profile::PhaseStats::wall_ns`], which is explicitly excluded
//!    from trace dumps).
//! 2. Event payloads are integers — floats are pre-scaled to fixed
//!    units (kHz, milli-°C, milli-factors) so formatting is exact.
//! 3. Sinks observe, they never steer: attaching or detaching a sink
//!    must not change a single simulation outcome. The session
//!    fingerprint deliberately ignores sinks, and CI proves all golden
//!    CSVs are byte-identical under a forced no-op sink.

pub mod event;
pub mod profile;
pub mod prom;
pub mod sink;

pub use event::{Phase, TraceEvent};
pub use profile::{PhaseProfile, PhaseStats};
pub use prom::{check_conformance, PromWriter, TEXT_FORMAT};
pub use sink::{shared, CounterSink, NullSink, RingSink, SharedSink, TimedEvent, TraceSink};
