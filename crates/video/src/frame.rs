//! Video frames.

use eavs_cpu::freq::Cycles;
use eavs_sim::time::SimDuration;
use std::fmt;

/// The coding type of a frame, which determines its size and decode cost
/// distribution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameType {
    /// Intra-coded: largest, most expensive.
    I,
    /// Predicted: medium.
    P,
    /// Bi-predicted: smallest, cheapest.
    B,
}

impl FrameType {
    /// All frame types.
    pub const ALL: [FrameType; 3] = [FrameType::I, FrameType::P, FrameType::B];

    /// Dense index for per-type bookkeeping (I=0, P=1, B=2).
    pub fn index(self) -> usize {
        match self {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            FrameType::I => 'I',
            FrameType::P => 'P',
            FrameType::B => 'B',
        };
        write!(f, "{c}")
    }
}

/// One coded video frame.
///
/// `size_bytes` is known to the player as soon as the containing segment is
/// downloaded (it is in the container); `decode_cycles` is the *ground
/// truth* cost the simulator charges — governors must predict it, they may
/// not read it (the EAVS governor only receives it **after** the frame has
/// been decoded, as feedback).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Frame {
    /// Global decode-order index within the stream.
    pub index: u64,
    /// Coding type.
    pub frame_type: FrameType,
    /// Coded size in bytes (container metadata, visible to governors).
    pub size_bytes: u32,
    /// Ground-truth decode cost (hidden from governors until decoded).
    pub decode_cycles: Cycles,
    /// Presentation duration (1/fps).
    pub duration: SimDuration,
}

impl Frame {
    /// Media timestamp of this frame assuming constant frame duration from
    /// stream start.
    pub fn media_pts(&self) -> SimDuration {
        SimDuration::from_nanos(self.duration.as_nanos() * self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_indices_are_dense_and_distinct() {
        let mut seen = [false; 3];
        for t in FrameType::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(FrameType::I.to_string(), "I");
        assert_eq!(FrameType::P.to_string(), "P");
        assert_eq!(FrameType::B.to_string(), "B");
    }

    #[test]
    fn media_pts_accumulates_duration() {
        let f = Frame {
            index: 30,
            frame_type: FrameType::P,
            size_bytes: 1000,
            decode_cycles: Cycles::from_mega(5.0),
            duration: SimDuration::from_nanos(33_333_333),
        };
        assert_eq!(f.media_pts(), SimDuration::from_nanos(30 * 33_333_333));
    }
}
