//! The Android `interactive` governor.
//!
//! The stock governor on most Android devices of the paper's era.
//! Semantics reproduced from the AOSP driver:
//!
//! * load ≥ `go_hispeed_load` while below `hispeed_freq` → jump to
//!   `hispeed_freq` immediately (the touch-responsiveness burst);
//! * otherwise target the lowest frequency with
//!   `freq × target_load ≥ load × cur_freq` (i.e. aim to run at
//!   `target_load` percent busy);
//! * rising *above* `hispeed_freq` requires the load to persist for
//!   `above_hispeed_delay`;
//! * any *decrease* is blocked until the current frequency has been in
//!   force for `min_sample_time` (the floor timer).

use crate::governor::{lowest_index_for_khz, CpufreqGovernor};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::{SimDuration, SimTime};

/// Tunables (sysfs `interactive/*`), AOSP defaults.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InteractiveTunables {
    /// Load percentage that triggers the hispeed jump.
    pub go_hispeed_load: f64,
    /// The jump target as a fraction of max frequency (AOSP default: max).
    pub hispeed_freq_fraction: f64,
    /// Target busy percentage for steady-state scaling.
    pub target_load: f64,
    /// Sampling (timer) period.
    pub timer_rate: SimDuration,
    /// Dwell required at hispeed before going above it.
    pub above_hispeed_delay: SimDuration,
    /// Minimum time at a frequency before scaling down.
    pub min_sample_time: SimDuration,
}

impl Default for InteractiveTunables {
    fn default() -> Self {
        InteractiveTunables {
            go_hispeed_load: 99.0,
            hispeed_freq_fraction: 1.0,
            target_load: 90.0,
            timer_rate: SimDuration::from_millis(20),
            above_hispeed_delay: SimDuration::from_millis(20),
            min_sample_time: SimDuration::from_millis(80),
        }
    }
}

/// The `interactive` governor.
#[derive(Clone, Copy, Debug)]
pub struct Interactive {
    tunables: InteractiveTunables,
    /// When the current frequency was entered (floor timer).
    freq_since: Option<(OppIndex, SimTime)>,
    /// When the policy reached hispeed (above_hispeed_delay timer).
    hispeed_since: Option<SimTime>,
}

impl Interactive {
    /// Creates the governor with default tunables.
    pub fn new() -> Self {
        Interactive::with_tunables(InteractiveTunables::default())
    }

    /// Creates the governor with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range tunables.
    pub fn with_tunables(tunables: InteractiveTunables) -> Self {
        assert!(
            tunables.go_hispeed_load > 0.0 && tunables.go_hispeed_load <= 100.0,
            "bad go_hispeed_load"
        );
        assert!(
            tunables.hispeed_freq_fraction > 0.0 && tunables.hispeed_freq_fraction <= 1.0,
            "bad hispeed fraction"
        );
        assert!(
            tunables.target_load > 0.0 && tunables.target_load <= 100.0,
            "bad target_load"
        );
        Interactive {
            tunables,
            freq_since: None,
            hispeed_since: None,
        }
    }

    fn hispeed_index(&self, table: &OppTable, limits: PolicyLimits) -> OppIndex {
        let khz = self.tunables.hispeed_freq_fraction * table.max_freq().khz() as f64;
        lowest_index_for_khz(table, limits, khz)
    }

    /// The [`on_sample`](CpufreqGovernor::on_sample) decision over a
    /// precomputed [`DecisionLut`](crate::kind::DecisionLut) — identical
    /// burst/dwell/floor-timer transitions.
    pub(crate) fn decide_lut(
        &mut self,
        sample: &LoadSample,
        lut: &crate::kind::DecisionLut,
    ) -> OppIndex {
        let now = sample.now;
        let cur = sample.cur_index;
        match self.freq_since {
            Some((idx, _)) if idx == cur => {}
            _ => self.freq_since = Some((cur, now)),
        }
        let load = sample.load_pct();
        let hispeed = lut.lookup(self.tunables.hispeed_freq_fraction * lut.hw_max_khz());

        let desired_khz = load / self.tunables.target_load * sample.cur_freq.khz() as f64;
        let mut target = lut.lookup(desired_khz);

        if load >= self.tunables.go_hispeed_load && cur < hispeed {
            target = target.max(hispeed);
            self.hispeed_since = Some(now);
        }
        if target > hispeed && cur >= hispeed {
            let since = *self.hispeed_since.get_or_insert(now);
            if now.saturating_duration_since(since) < self.tunables.above_hispeed_delay {
                target = hispeed.max(cur);
            }
        } else if cur < hispeed {
            self.hispeed_since = None;
        }

        if target < cur {
            let (_, since) = self.freq_since.expect("set above");
            if now.saturating_duration_since(since) < self.tunables.min_sample_time {
                target = cur;
            }
        }
        lut.clamp(target)
    }
}

impl Default for Interactive {
    fn default() -> Self {
        Interactive::new()
    }
}

impl CpufreqGovernor for Interactive {
    fn name(&self) -> &'static str {
        "interactive"
    }

    fn sampling_interval(&self) -> SimDuration {
        self.tunables.timer_rate
    }

    fn on_sample(
        &mut self,
        sample: &LoadSample,
        table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        let now = sample.now;
        let cur = sample.cur_index;
        // Maintain the floor timer.
        match self.freq_since {
            Some((idx, _)) if idx == cur => {}
            _ => self.freq_since = Some((cur, now)),
        }
        let load = sample.load_pct();
        let hispeed = self.hispeed_index(table, limits);

        // Desired frequency so the CPU would run at target_load.
        let desired_khz = load / self.tunables.target_load * sample.cur_freq.khz() as f64;
        let mut target = lowest_index_for_khz(table, limits, desired_khz);

        // Hispeed burst logic.
        if load >= self.tunables.go_hispeed_load && cur < hispeed {
            target = target.max(hispeed);
            self.hispeed_since = Some(now);
        }
        if target > hispeed && cur >= hispeed {
            // Going above hispeed requires dwell.
            let since = *self.hispeed_since.get_or_insert(now);
            if now.saturating_duration_since(since) < self.tunables.above_hispeed_delay {
                target = hispeed.max(cur);
            }
        } else if cur < hispeed {
            self.hispeed_since = None;
        }

        // Floor timer: block decreases until min_sample_time at cur.
        if target < cur {
            let (_, since) = self.freq_since.expect("set above");
            if now.saturating_duration_since(since) < self.tunables.min_sample_time {
                target = cur;
            }
        }
        limits.clamp(target)
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.freq_since.is_some() || self.hispeed_since.is_some() {
            // Running floor/dwell timers are learned state.
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_f64(self.tunables.go_hispeed_load);
        fp.write_f64(self.tunables.hispeed_freq_fraction);
        fp.write_f64(self.tunables.target_load);
        fp.write_u64(self.tunables.timer_rate.as_nanos());
        fp.write_u64(self.tunables.above_hispeed_delay.as_nanos());
        fp.write_u64(self.tunables.min_sample_time.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn sample(load_pct: f64, cur_index: OppIndex, t_ms: u64, table: &OppTable) -> LoadSample {
        LoadSample {
            now: SimTime::from_millis(t_ms),
            window: SimDuration::from_millis(20),
            busy_fraction: load_pct / 100.0,
            cur_freq: table.freq(cur_index),
            cur_index,
        }
    }

    #[test]
    fn hispeed_jump_on_burst() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Interactive::new();
        // 100% load from the lowest OPP jumps straight to hispeed (= max
        // with default tunables).
        let idx = g.on_sample(&sample(100.0, 0, 0, &t), &t, limits);
        assert_eq!(idx, 3);
    }

    #[test]
    fn steady_state_targets_ninety_percent() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Interactive::new();
        // 45% at 2000 MHz -> desired = 45/90 × 2000 = 1000 MHz, but the
        // floor timer blocks the drop for min_sample_time (80 ms).
        let idx = g.on_sample(&sample(45.0, 3, 0, &t), &t, limits);
        assert_eq!(idx, 3, "floor timer holds");
        let idx = g.on_sample(&sample(45.0, 3, 100, &t), &t, limits);
        assert_eq!(idx, 1, "after dwell the drop happens");
    }

    #[test]
    fn moderate_load_scales_to_target() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Interactive::with_tunables(InteractiveTunables {
            hispeed_freq_fraction: 0.75, // hispeed = 1500
            ..InteractiveTunables::default()
        });
        // 60% at 1000 MHz -> desired = 60/90×1000 = 667 MHz -> 1000 MHz OPP.
        let idx = g.on_sample(&sample(60.0, 1, 0, &t), &t, limits);
        assert_eq!(idx, 1);
    }

    #[test]
    fn above_hispeed_requires_dwell() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Interactive::with_tunables(InteractiveTunables {
            hispeed_freq_fraction: 0.75, // hispeed = index 2 (1500)
            above_hispeed_delay: SimDuration::from_millis(40),
            ..InteractiveTunables::default()
        });
        // Burst at low freq jumps to hispeed, not above.
        let idx = g.on_sample(&sample(100.0, 0, 0, &t), &t, limits);
        assert_eq!(idx, 2, "jump lands on hispeed first");
        // At hispeed with very high load, dwell not yet satisfied.
        let idx = g.on_sample(&sample(100.0, 2, 20, &t), &t, limits);
        assert_eq!(idx, 2);
        // After the dwell, it may exceed hispeed.
        let idx = g.on_sample(&sample(100.0, 2, 60, &t), &t, limits);
        assert_eq!(idx, 3);
    }

    #[test]
    fn respects_limits() {
        let t = table();
        let limits = PolicyLimits {
            min_index: 0,
            max_index: 1,
        };
        let mut g = Interactive::new();
        let idx = g.on_sample(&sample(100.0, 0, 0, &t), &t, limits);
        assert!(idx <= 1);
    }

    #[test]
    fn default_tunables_are_aosp() {
        let d = InteractiveTunables::default();
        assert_eq!(d.go_hispeed_load, 99.0);
        assert_eq!(d.timer_rate, SimDuration::from_millis(20));
        assert_eq!(d.min_sample_time, SimDuration::from_millis(80));
    }
}
