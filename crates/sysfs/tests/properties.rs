//! Property-based tests: the sysfs surface never panics on arbitrary
//! input, and its state machine mirrors kernel semantics.

use eavs_cpu::soc::SocModel;
use eavs_sim::time::SimTime;
use eavs_sysfs::{CpufreqFs, SysfsError, AVAILABLE_GOVERNORS};
use proptest::prelude::*;

proptest! {
    /// Arbitrary reads and writes to arbitrary paths/values return errors
    /// rather than panicking, and never corrupt the policy (reads of the
    /// core files still succeed afterwards).
    #[test]
    fn fuzz_never_panics(
        ops in proptest::collection::vec(
            (any::<bool>(), "[a-z_/]{0,24}", "[0-9a-z ]{0,12}"),
            0..60
        ),
    ) {
        let mut cluster = SocModel::MidRange.build_cluster();
        let mut fs = CpufreqFs::new(&cluster);
        let mut t_ms = 0u64;
        for (is_write, path, value) in ops {
            t_ms += 1;
            let now = SimTime::from_millis(t_ms);
            if is_write {
                let _ = fs.write(&mut cluster, &path, &value, now);
            } else {
                let _ = fs.read(&cluster, &path, now);
            }
        }
        let now = SimTime::from_millis(t_ms + 1);
        prop_assert!(fs.read(&cluster, "scaling_cur_freq", now).is_ok());
        prop_assert!(fs.read(&cluster, "scaling_governor", now).is_ok());
        prop_assert!(fs.read(&cluster, "stats/time_in_state", now).is_ok());
    }

    /// Every listed file is readable; every advertised governor is
    /// accepted by scaling_governor; everything else is rejected.
    #[test]
    fn listed_files_readable_and_governors_accepted(seed in any::<u64>()) {
        let mut cluster = SocModel::Flagship2016.build_cluster();
        let mut fs = CpufreqFs::new(&cluster);
        let now = SimTime::from_millis(seed % 1000);
        for file in fs.list() {
            prop_assert!(
                fs.read(&cluster, file, now).is_ok(),
                "listed file {file} unreadable"
            );
        }
        for gov in AVAILABLE_GOVERNORS {
            prop_assert!(fs.write(&mut cluster, "scaling_governor", gov, now).is_ok());
        }
        let err = fs
            .write(&mut cluster, "scaling_governor", "not-a-governor", now)
            .unwrap_err();
        let is_invalid = matches!(err, SysfsError::InvalidValue { .. });
        prop_assert!(is_invalid);
    }

    /// Userspace setspeed accepts exactly the advertised frequencies.
    #[test]
    fn setspeed_accepts_exactly_available_frequencies(khz in 0u32..3_000_000) {
        let mut cluster = SocModel::MidRange.build_cluster();
        let mut fs = CpufreqFs::new(&cluster);
        let now = SimTime::ZERO;
        fs.write(&mut cluster, "scaling_governor", "userspace", now)
            .unwrap();
        let advertised: Vec<u32> = cluster
            .opps()
            .iter()
            .map(|o| o.freq.khz())
            .collect();
        let result = fs.write(&mut cluster, "scaling_setspeed", &khz.to_string(), now);
        prop_assert_eq!(result.is_ok(), advertised.contains(&khz));
    }
}
