//! Regenerates experiment `f29_radio_tail_sweep` (see DESIGN.md §16).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f29_radio_tail_sweep")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
