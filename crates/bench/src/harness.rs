//! Shared infrastructure for the experiment binaries.

use eavs_core::governor::{EavsConfig, EavsGovernor};
use eavs_core::predictor::Hybrid;
use eavs_core::session::GovernorChoice;

use eavs_metrics::table::Table;
use eavs_sim::time::SimDuration;
use eavs_video::manifest::Manifest;
use std::fs;
use std::path::PathBuf;

/// The seed every experiment uses unless it is explicitly sweeping seeds.
pub const SEED: u64 = 42;

/// Governors compared in the headline figures, in presentation order.
pub const COMPARISON_GOVERNORS: [&str; 8] = [
    "performance",
    "powersave",
    "userspace",
    "ondemand",
    "conservative",
    "interactive",
    "schedutil",
    "eavs",
];

/// Constructs a governor (baseline or EAVS-with-hybrid) by name.
///
/// # Panics
///
/// Panics on unknown names.
pub fn governor(name: &str) -> GovernorChoice {
    if name == "eavs" {
        eavs_default()
    } else {
        // Baselines go through the devirtualized decision kernel
        // (decision-identical to the trait path, measurably faster).
        GovernorChoice::kind_by_name(name).unwrap_or_else(|| panic!("unknown governor {name}"))
    }
}

/// The paper-default EAVS configuration (hybrid predictor).
pub fn eavs_default() -> GovernorChoice {
    GovernorChoice::Eavs(EavsGovernor::new(
        Box::new(Hybrid::default()),
        EavsConfig::default(),
    ))
}

/// EAVS with panic recovery enabled (the fault-tolerant configuration
/// compared in F24/F25): on a prediction breach or rebuffer the next
/// decision re-races to the highest permitted OPP, then decays back
/// through the normal selector hysteresis.
pub fn eavs_resilient() -> GovernorChoice {
    GovernorChoice::Eavs(EavsGovernor::new(
        Box::new(Hybrid::default()),
        EavsConfig::resilient(),
    ))
}

/// An EAVS variant with an explicit config and predictor name.
pub fn eavs_with(config: EavsConfig, predictor: &str) -> GovernorChoice {
    GovernorChoice::Eavs(EavsGovernor::new(
        eavs_core::predictor::predictor_by_name(predictor)
            .unwrap_or_else(|| panic!("unknown predictor {predictor}")),
        config,
    ))
}

/// The fixed-quality manifests used across figures.
pub fn single_manifest(
    bitrate_kbps: u32,
    width: u32,
    height: u32,
    secs: u64,
    fps: u32,
) -> Manifest {
    Manifest::single(
        bitrate_kbps,
        width,
        height,
        SimDuration::from_secs(secs),
        fps,
    )
}

/// 1080p30 at 6 Mbps — the headline workload.
pub fn manifest_1080p30(secs: u64) -> Manifest {
    single_manifest(6_000, 1920, 1080, secs, 30)
}

/// Where experiment CSVs land.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("EAVS_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    PathBuf::from(dir)
}

/// Prints a table and writes its CSV under `results/<id>.csv`.
pub fn emit(id: &str, table: &Table) {
    println!("{}", table.render());
    emit_into(&results_dir(), id, table);
}

/// Writes a table's CSV as `<dir>/<id>.csv` (no rendering to stdout).
pub fn emit_into(dir: &std::path::Path, id: &str, table: &Table) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{id}.csv"));
    if let Err(e) = fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("[csv written to {}]\n", path.display());
    }
}

pub use crate::cache::{run_session, run_sessions};
pub use crate::executor::{run_parallel, run_parallel_labeled};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_constructor_covers_comparison_set() {
        for name in COMPARISON_GOVERNORS {
            let g = governor(name);
            drop(g);
        }
    }

    #[test]
    #[should_panic(expected = "unknown governor")]
    fn unknown_governor_panics() {
        governor("warp-speed");
    }

    #[test]
    fn parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn manifest_helpers() {
        let m = manifest_1080p30(10);
        assert_eq!(m.fps, 30);
        assert_eq!(m.representation(0).height, 1080);
    }
}
