//! A minimal JSON tree: recursive-descent parser plus a writer.
//!
//! The workspace is offline (no serde), and the rest of the repo only
//! ever *writes* JSON by hand; the daemon's control plane needs to read
//! it back. Two properties matter more than speed here:
//!
//! - **Numbers round-trip exactly.** [`Value::Num`] stores the raw
//!   lexeme, so a `u64` seed parses with full precision and an `f64`
//!   weight written via Rust's shortest-round-trip `Display` re-parses
//!   to the identical bits (Rust's float parser is correctly rounded).
//!   Campaign-spec fingerprints therefore survive a JSON round-trip.
//! - **Bounded inputs.** Parse depth is capped so a hostile request
//!   body cannot blow the stack; the HTTP layer caps the byte size.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw lexeme (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a number value from a `u64`.
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// Builds a number value from a finite `f64` (shortest round-trip).
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity — they have no JSON representation;
    /// callers validate first.
    pub fn f64(v: f64) -> Value {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Value::Num(format!("{v}"))
    }

    /// Builds a string value.
    pub fn str(v: impl Into<String>) -> Value {
        Value::Str(v.into())
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if it is an exact non-negative integer
    /// lexeme.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (correctly rounded from the lexeme).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes the tree (compact, no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_json_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a JSON string literal with the mandatory escapes.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slicing on scalar boundaries"),
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following low
    /// surrogate when needed). Called with `pos` on the `u`.
    fn unicode_escape(&mut self) -> Result<char, String> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xdc00..0xe000).contains(&lo) {
                    return Err(self.err("bad low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                return char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u hex"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexemes are ASCII")
            .to_owned();
        Ok(Value::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders_structures() {
        let src = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"hi\n\"x\""}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("hi\n\"x\""));
        // Render → parse is a fixpoint.
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        // u64 beyond f64's 53-bit mantissa.
        let big = u64::MAX - 1;
        let v = parse(&Value::u64(big).render()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        // f64s via shortest-round-trip Display re-parse bit-exactly.
        for f in [0.1, 1.0 / 3.0, 2.5e-7, f64::MIN_POSITIVE, 1e300, -0.0] {
            let v = parse(&Value::f64(f).render()).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""é😀x""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀x"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[1]extra",
            "-",
            "1.",
            "1e",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).unwrap_err().contains("nesting too deep"));
        let ok = "[".repeat(50) + &"]".repeat(50);
        parse(&ok).unwrap();
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = Value::str("a\u{1}b");
        assert_eq!(v.render(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
