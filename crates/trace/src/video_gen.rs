//! Synthetic video workload generation.
//!
//! Produces [`Segment`]s with per-frame coded sizes and ground-truth decode
//! cycles. The statistical structure matters more than absolute values:
//!
//! * per-type multipliers (I ≫ P > B) on both size and cost;
//! * lognormal within-type variation (content-dependent CV);
//! * GOP-correlated scene changes that inflate whole GOPs;
//! * decode cost scaling with resolution (cycles/pixel) plus a bitrate
//!   term (entropy decoding scales with bits).
//!
//! Generation is *position-addressable*: segment `k` at rung `r` is the
//! same bytes/cycles no matter what the ABR did before it, because each
//! (segment, rung) pair forks its own RNG stream. This keeps comparisons
//! between governors workload-identical even when buffer dynamics shift
//! download order.

use std::sync::Arc;

use crate::content::ContentProfile;
use eavs_cpu::freq::Cycles;
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::rng::SimRng;
use eavs_video::frame::{Frame, FrameType};
use eavs_video::gop::GopStructure;
use eavs_video::manifest::{Manifest, Representation};
use eavs_video::segment::Segment;

/// Mean decode cycles per pixel for film content at 1.0 complexity.
/// ≈ 9.5 cycles/pixel puts 1080p30 software decode around 20 Mcycles per
/// frame — a realistic load for phone-class cores.
const CYCLES_PER_PIXEL: f64 = 9.5;

/// Additional decode cycles per coded byte (entropy decode).
const CYCLES_PER_BYTE: f64 = 8.0;

/// Per-type size multipliers (relative to the stream mean).
fn size_factor(t: FrameType) -> f64 {
    match t {
        FrameType::I => 4.0,
        FrameType::P => 1.2,
        FrameType::B => 0.55,
    }
}

/// Per-type decode-cost multipliers (costs vary less than sizes).
fn cycle_factor(t: FrameType) -> f64 {
    match t {
        FrameType::I => 1.8,
        FrameType::P => 1.1,
        FrameType::B => 0.75,
    }
}

/// Deterministic synthetic video source for one title.
///
/// The manifest is held behind an [`Arc`] so parallel sweeps can share one
/// allocation across hundreds of sessions instead of deep-cloning the ladder
/// per job.
#[derive(Clone, Debug)]
pub struct VideoGenerator {
    manifest: Arc<Manifest>,
    profile: ContentProfile,
    gop: GopStructure,
    root: SimRng,
    seed: u64,
    /// Digest of (manifest contents, profile, gop, seed): the identity
    /// under which [`VideoGenerator::shared_segment`] memoizes.
    memo_key: u128,
}

impl VideoGenerator {
    /// Creates a generator for `manifest` with the given content profile
    /// and seed. Accepts either an owned `Manifest` or a shared
    /// `Arc<Manifest>`.
    pub fn new(manifest: impl Into<Arc<Manifest>>, profile: ContentProfile, seed: u64) -> Self {
        let root = SimRng::new(seed).fork("video-gen");
        let mut gen = VideoGenerator {
            manifest: manifest.into(),
            profile,
            gop: GopStructure::streaming_default(),
            root,
            seed,
            memo_key: 0,
        };
        gen.rekey();
        gen
    }

    /// Overrides the GOP structure.
    pub fn with_gop(mut self, gop: GopStructure) -> Self {
        self.gop = gop;
        self.rekey();
        self
    }

    /// Recomputes the memoization key from the generator's inputs. The
    /// manifest is hashed by content, so two generators over separately
    /// allocated but identical ladders share cache entries.
    fn rekey(&mut self) {
        let mut fp = Fingerprinter::new("eavs-video-gen/v1");
        self.manifest.fingerprint(&mut fp);
        fp.write_str(self.profile.name());
        fp.write_u32(self.gop.gop_length());
        for mix in self.gop.type_mix() {
            fp.write_f64(mix);
        }
        fp.write_u64(self.seed);
        self.memo_key = fp.finish().expect("no opaque inputs").0;
    }

    /// The manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The content profile.
    pub fn profile(&self) -> ContentProfile {
        self.profile
    }

    /// Mean coded bytes per frame at `rep`, before type multipliers.
    fn mean_frame_bytes(&self, rep: Representation) -> f64 {
        f64::from(rep.bitrate_kbps) * 1000.0 / 8.0 / f64::from(self.manifest.fps)
    }

    /// Normalization so that the type-mix-weighted size equals the mean.
    fn size_norm(&self) -> f64 {
        let mix = self.gop.type_mix();
        let weighted = mix[FrameType::I.index()] * size_factor(FrameType::I)
            + mix[FrameType::P.index()] * size_factor(FrameType::P)
            + mix[FrameType::B.index()] * size_factor(FrameType::B);
        1.0 / weighted
    }

    /// Whether the GOP starting at global frame `gop_start` is a scene
    /// change (deterministic per position).
    fn is_scene_change(&self, gop_start: u64) -> bool {
        let mut rng = self.root.fork(&format!("scene-{gop_start}"));
        rng.bernoulli(self.profile.scene_change_prob())
    }

    /// Generates segment `index` encoded at ladder rung `rep_id`.
    ///
    /// Deterministic in `(seed, index, rep_id)`.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `rep_id` is out of range for the manifest.
    pub fn segment(&self, index: u64, rep_id: usize) -> Segment {
        assert!(index < self.manifest.num_segments, "segment out of range");
        let rep = self.manifest.representation(rep_id);
        let mut rng = self.root.fork(&format!("seg-{index}-rep-{rep_id}"));
        let frames_per_seg = self.manifest.frames_per_segment;
        let first = index * frames_per_seg;
        let mean_bytes = self.mean_frame_bytes(rep) * self.size_norm();
        let frame_duration = self.manifest.frame_duration();
        let gop_len = u64::from(self.gop.gop_length());

        let mut frames = Vec::with_capacity(frames_per_seg as usize);
        for i in 0..frames_per_seg {
            let global = first + i;
            let ftype = self.gop.frame_type_at(global);
            let gop_start = global - global % gop_len;
            let boost = if self.is_scene_change(gop_start) {
                self.profile.scene_change_boost()
            } else {
                1.0
            };
            let size_mean = mean_bytes * size_factor(ftype) * boost;
            let size = rng
                .lognormal_mean_cv(size_mean, self.profile.size_cv())
                .max(64.0);
            let cycle_mean = (CYCLES_PER_PIXEL
                * self.profile.complexity()
                * rep.pixels() as f64
                * cycle_factor(ftype)
                + CYCLES_PER_BYTE * size)
                * boost;
            let cycles = rng
                .lognormal_mean_cv(cycle_mean, self.profile.cycle_cv())
                .max(10_000.0);
            frames.push(Frame {
                index: global,
                frame_type: ftype,
                size_bytes: size.round() as u32,
                decode_cycles: Cycles::new(cycles),
                duration: frame_duration,
            });
        }
        Segment::new(index, rep_id, frames)
    }

    /// Memoized [`segment`](Self::segment): identical `(manifest,
    /// profile, gop, seed, index, rep_id)` tuples are generated once per
    /// process and shared as an `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `rep_id` is out of range for the manifest.
    pub fn shared_segment(&self, index: u64, rep_id: usize) -> Arc<Segment> {
        crate::memo::shared_segment((self.memo_key, index, rep_id), || {
            self.segment(index, rep_id)
        })
    }

    /// Generates the whole stream at a fixed rung (analysis figures).
    pub fn all_segments(&self, rep_id: usize) -> Vec<Segment> {
        (0..self.manifest.num_segments)
            .map(|i| self.segment(i, rep_id))
            .collect()
    }

    /// Mean decode cycles per frame at a rung, estimated over the stream
    /// (used to size experiments).
    pub fn mean_cycles_per_frame(&self, rep_id: usize) -> f64 {
        let mut total = 0.0;
        let mut n = 0u64;
        for seg in self.all_segments(rep_id) {
            for f in seg.frames() {
                total += f.decode_cycles.get();
                n += 1;
            }
        }
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_sim::time::SimDuration;

    fn generator(profile: ContentProfile) -> VideoGenerator {
        let manifest = Manifest::standard_ladder(SimDuration::from_secs(20), 30);
        VideoGenerator::new(manifest, profile, 42)
    }

    #[test]
    fn deterministic_and_abr_path_independent() {
        let g1 = generator(ContentProfile::Film);
        let g2 = generator(ContentProfile::Film);
        // Same (segment, rung) twice, and regardless of generation order.
        let a = g2.segment(5, 2);
        let _ = g2.segment(0, 0);
        let b = g1.segment(5, 2);
        assert_eq!(a, b);
        // Different rungs differ.
        assert_ne!(g1.segment(5, 2), g1.segment(5, 3));
    }

    #[test]
    fn segment_size_tracks_bitrate() {
        let g = generator(ContentProfile::Film);
        let m = g.manifest().clone();
        for rep in m.representations() {
            let total: u64 = (0..m.num_segments)
                .map(|i| g.segment(i, rep.id).size_bytes())
                .sum();
            let expected = rep.bytes_per_segment(SimDuration::from_secs(2)) * m.num_segments;
            let ratio = total as f64 / expected as f64;
            assert!(
                (0.75..1.35).contains(&ratio),
                "{rep}: generated/nominal = {ratio:.2}"
            );
        }
    }

    #[test]
    fn i_frames_dominate_sizes_and_cycles() {
        let g = generator(ContentProfile::Film);
        let mut sums = [0.0f64; 3];
        let mut counts = [0u64; 3];
        let mut cyc = [0.0f64; 3];
        for seg in g.all_segments(3) {
            for f in seg.frames() {
                sums[f.frame_type.index()] += f64::from(f.size_bytes);
                cyc[f.frame_type.index()] += f.decode_cycles.get();
                counts[f.frame_type.index()] += 1;
            }
        }
        let mean = |v: f64, c: u64| v / c as f64;
        let (i_sz, p_sz, b_sz) = (
            mean(sums[0], counts[0]),
            mean(sums[1], counts[1]),
            mean(sums[2], counts[2]),
        );
        assert!(i_sz > 2.0 * p_sz, "I frames much larger than P");
        assert!(p_sz > b_sz, "P larger than B");
        let (i_cy, p_cy, b_cy) = (
            mean(cyc[0], counts[0]),
            mean(cyc[1], counts[1]),
            mean(cyc[2], counts[2]),
        );
        assert!(i_cy > p_cy && p_cy > b_cy, "cost ordering I > P > B");
    }

    #[test]
    fn cycles_scale_with_resolution() {
        let g = generator(ContentProfile::Film);
        let low = g.mean_cycles_per_frame(0); // 360p
        let high = g.mean_cycles_per_frame(3); // 1080p
        assert!(
            high > 3.0 * low,
            "1080p should cost ≫ 360p: {high:.0} vs {low:.0}"
        );
    }

    #[test]
    fn realistic_decode_budget_at_1080p() {
        // ~20 Mcycles/frame at 1080p film: feasible on a ~900 MHz core at
        // 30 fps (22 ms < 33 ms) but not on a 307 MHz core.
        let g = generator(ContentProfile::Film);
        let mean = g.mean_cycles_per_frame(3);
        assert!(
            (12e6..40e6).contains(&mean),
            "1080p mean cycles/frame {mean:.3e} outside plausible band"
        );
    }

    #[test]
    fn sport_is_harder_and_burstier_than_animation() {
        let sport = generator(ContentProfile::Sport);
        let anim = generator(ContentProfile::Animation);
        assert!(sport.mean_cycles_per_frame(3) > 1.4 * anim.mean_cycles_per_frame(3));
        // Burstiness: compare per-frame cycle CV at the same rung.
        let cv = |g: &VideoGenerator| {
            let mut xs = Vec::new();
            for seg in g.all_segments(3) {
                xs.extend(seg.frames().iter().map(|f| f.decode_cycles.get()));
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        assert!(cv(&sport) > cv(&anim), "sport must be burstier");
    }

    #[test]
    fn frame_indices_are_globally_consecutive() {
        let g = generator(ContentProfile::Film);
        let m = g.manifest().clone();
        let mut expected = 0u64;
        for i in 0..m.num_segments {
            let seg = g.segment(i, 1);
            for f in seg.frames() {
                assert_eq!(f.index, expected);
                expected += 1;
            }
        }
        assert_eq!(expected, m.total_frames());
    }
}
