//! Whole-device energy co-model: radio RRC, display, and decoder power.
//!
//! The paper charges only the CPU for streaming, but on real devices the
//! network interface, panel, and decoder dominate the budget. This crate
//! adds the three missing components behind one [`DevicePowerModel`]:
//!
//! - **Radio** ([`RrcRadioModel`]): an explicit RRC-style state machine
//!   (IDLE → PROMO → ACTIVE → TAIL) walked over the merged download
//!   activity intervals the session already produces. Promotion latency
//!   and the demotion tail timer are both configurable, so the F29
//!   tail-timer sweep is a one-field change.
//! - **Display** ([`DisplayModel`]): panel power keyed on brightness with
//!   an EVSO-style per-segment frame-similarity discount. Similarity is a
//!   coordinate-keyed draw on `(seed, segment)` — like `RandomFaults`,
//!   it is a pure function of stable coordinates, never of event order.
//! - **Decoder** ([`DecoderModel`]): decode cycles charged per megapixel
//!   of the chosen representation, plus an upscale-energy term for the
//!   pixels the panel must synthesize when decode resolution is below
//!   display resolution (Herglotz-style spatial-scaling trade-off).
//!
//! Accounting is *post-hoc*: [`DevicePowerModel::account`] is a pure
//! function of the session's download timeline, chosen bitrates,
//! manifest, seed, and length. It schedules no events and draws nothing
//! from the session RNG, so attaching any model — including
//! [`DevicePowerModel::none`], the zero-power default — cannot perturb
//! the simulation by construction. The no-op contract is still proven by
//! test (`tests/power_noop.rs`), not by this argument alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eavs_net::radio::{merge_intervals, ActivityInterval};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::{SimDuration, SimTime};
use eavs_video::manifest::Manifest;

/// Decision domain for the coordinate-keyed frame-similarity draw,
/// disjoint from the fault-injection domains by convention (they mix a
/// different subsystem tag into the seed anyway).
const DOMAIN_SIMILARITY: u64 = 0x51;

/// Mix a seed with a (domain, a, b) coordinate into a 64-bit hash.
/// SplitMix64-style finalization: order-free, avalanche on every input —
/// the same scheme `eavs-faults` uses for coordinate-keyed draws.
fn coordinate_hash(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-segment frame-similarity factor in `[0, 1)`: a pure function
/// of `(seed, segment)`, independent of governor, thread count, batch
/// width, and replay mode.
pub fn segment_similarity(seed: u64, segment: u64) -> f64 {
    let h = coordinate_hash(seed, DOMAIN_SIMILARITY, segment, 0);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// An RRC-style radio state machine with a single configurable tail
/// timer and promotion latency.
///
/// Unlike [`eavs_net::radio::RadioModel`] (two fixed tail phases,
/// promotion charged as a lump of energy), this machine walks the four
/// states explicitly and reports per-state residency, which is what the
/// F28 breakdown and the F29 tail sweep plot.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RrcRadioModel {
    /// Camped-idle power, watts.
    pub idle_power_w: f64,
    /// Power while signaling an IDLE→ACTIVE promotion, watts.
    pub promo_power_w: f64,
    /// Power while actively transferring, watts.
    pub active_power_w: f64,
    /// Power during the inactivity tail, watts.
    pub tail_power_w: f64,
    /// Duration of promotion signaling at the head of a transfer that
    /// finds the radio idle.
    pub promotion_latency: SimDuration,
    /// Inactivity timer: how long the radio holds the tail state after
    /// the last transfer before demoting to idle.
    pub tail_timer: SimDuration,
}

impl RrcRadioModel {
    /// LTE-flavored defaults: ~1.1 W connected, ~0.6 W tail for 10 s,
    /// 260 ms promotion at ~1.3 W signaling power.
    pub fn lte() -> Self {
        RrcRadioModel {
            idle_power_w: 0.015,
            promo_power_w: 1.3,
            active_power_w: 1.1,
            tail_power_w: 0.6,
            promotion_latency: SimDuration::from_millis(260),
            tail_timer: SimDuration::from_secs(10),
        }
    }

    /// 3G-flavored defaults: slow 1.5 s promotion, long 12 s tail.
    pub fn umts_3g() -> Self {
        RrcRadioModel {
            idle_power_w: 0.02,
            promo_power_w: 1.2,
            active_power_w: 1.2,
            tail_power_w: 0.7,
            promotion_latency: SimDuration::from_millis(1500),
            tail_timer: SimDuration::from_secs(12),
        }
    }

    /// The same machine with a different tail timer — the F29 sweep knob.
    pub fn with_tail_timer(self, tail_timer: SimDuration) -> Self {
        RrcRadioModel { tail_timer, ..self }
    }

    /// Walks IDLE/PROMO/ACTIVE/TAIL over the session's activity
    /// intervals (merged internally) and returns the per-state residency
    /// and energy.
    ///
    /// A promotion is charged whenever a transfer begins while the radio
    /// is idle: at session start, or after a gap longer than
    /// `tail_timer`. Promotion signaling occupies the head of the
    /// transfer interval (clipped to the interval length), the remainder
    /// is ACTIVE; after the interval the radio holds TAIL for up to
    /// `tail_timer`, truncated by the next transfer or session end, then
    /// demotes to IDLE. The four residencies partition `session_len`
    /// exactly.
    pub fn account(&self, activity: Vec<ActivityInterval>, session_len: SimDuration) -> RrcReport {
        let end = SimTime::ZERO + session_len;
        let merged = merge_intervals(activity);
        let mut r = RrcReport::default();
        let mut prev_end: Option<SimTime> = None;
        for (i, iv) in merged.iter().enumerate() {
            let iv_end = iv.end.min(end);
            let iv_start = iv.start.min(iv_end);
            if iv_end <= iv_start {
                continue;
            }
            let promoted = match prev_end {
                None => true,
                Some(pe) => iv_start.saturating_duration_since(pe) > self.tail_timer,
            };
            let len = iv_end - iv_start;
            if promoted {
                r.promotions += 1;
                let promo = len.min(self.promotion_latency);
                r.promo_time += promo;
                r.active_time += len.saturating_sub(promo);
            } else {
                r.active_time += len;
            }
            let next_start = merged
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(SimTime::MAX)
                .min(end);
            let gap = next_start.saturating_duration_since(iv_end);
            r.tail_time += gap.min(self.tail_timer);
            prev_end = Some(iv_end);
        }
        r.idle_time = session_len
            .saturating_sub(r.active_time)
            .saturating_sub(r.promo_time)
            .saturating_sub(r.tail_time);
        r.energy_j = self.idle_power_w * r.idle_time.as_secs_f64()
            + self.promo_power_w * r.promo_time.as_secs_f64()
            + self.active_power_w * r.active_time.as_secs_f64()
            + self.tail_power_w * r.tail_time.as_secs_f64();
        r
    }

    /// Hashes every parameter into `fp`.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_f64(self.idle_power_w);
        fp.write_f64(self.promo_power_w);
        fp.write_f64(self.active_power_w);
        fp.write_f64(self.tail_power_w);
        fp.write_u64(self.promotion_latency.as_nanos());
        fp.write_u64(self.tail_timer.as_nanos());
    }
}

/// Per-state residency and energy of one [`RrcRadioModel`] walk.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct RrcReport {
    /// Time camped idle.
    pub idle_time: SimDuration,
    /// Time spent in promotion signaling.
    pub promo_time: SimDuration,
    /// Time actively transferring.
    pub active_time: SimDuration,
    /// Time in the inactivity tail.
    pub tail_time: SimDuration,
    /// IDLE→ACTIVE promotions charged.
    pub promotions: u32,
    /// Total radio energy, joules.
    pub energy_j: f64,
}

/// Panel power keyed on brightness with an EVSO-style per-segment
/// frame-similarity discount.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DisplayModel {
    /// Backlight/OLED drive level in `[0, 1]`.
    pub brightness: f64,
    /// Panel power at zero brightness (controller + always-on), watts.
    pub base_power_w: f64,
    /// Additional power at full brightness, watts.
    pub full_power_w: f64,
    /// Fraction of the brightness-dependent power saved when consecutive
    /// frames are fully similar (EVSO dims imperceptibly on static
    /// content); scaled by each segment's similarity factor.
    pub similarity_gain: f64,
}

impl DisplayModel {
    /// A phone-class panel: ~0.35 W base, up to ~1.1 W more at full
    /// brightness, 30 % ceiling on the similarity discount.
    pub fn phone(brightness: f64) -> Self {
        DisplayModel {
            brightness,
            base_power_w: 0.35,
            full_power_w: 1.1,
            similarity_gain: 0.3,
        }
    }

    /// Panel power while displaying segment `seg` of a `seed`-keyed
    /// session, watts.
    pub fn segment_power_w(&self, seed: u64, seg: u64) -> f64 {
        let discount = 1.0 - self.similarity_gain * segment_similarity(seed, seg);
        self.base_power_w + self.brightness * self.full_power_w * discount
    }

    /// Integrates panel power over the session: the wall clock is cut on
    /// the manifest's segment grid, each slice billed at that segment's
    /// similarity-discounted power (slices past the last content segment
    /// hold its factor — the panel keeps showing the final frames).
    /// Summation order is the fixed segment order, so the result is
    /// bit-stable.
    pub fn account(&self, seed: u64, manifest: &Manifest, session_len: SimDuration) -> f64 {
        let seg_ns = manifest.segment_duration().as_nanos();
        let total_ns = session_len.as_nanos();
        let mut energy = 0.0;
        let mut t = 0u64;
        let mut idx = 0u64;
        while t < total_ns {
            let slice = seg_ns.min(total_ns - t);
            let seg = idx.min(manifest.num_segments.saturating_sub(1));
            energy += self.segment_power_w(seed, seg) * slice as f64 / 1e9;
            t += slice;
            idx += 1;
        }
        energy
    }

    /// Hashes every parameter into `fp`.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_f64(self.brightness);
        fp.write_f64(self.base_power_w);
        fp.write_f64(self.full_power_w);
        fp.write_f64(self.similarity_gain);
    }
}

/// Decoder energy charged by decode resolution, with an upscale term for
/// the pixels the display pipeline synthesizes when decoding below panel
/// resolution.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DecoderModel {
    /// Decode energy per megapixel decoded, joules.
    pub decode_j_per_mpx: f64,
    /// Upscale energy per megapixel of display-resolution deficit, joules.
    pub upscale_j_per_mpx: f64,
    /// Panel width the decoded frames are scaled to, pixels.
    pub display_width: u32,
    /// Panel height the decoded frames are scaled to, pixels.
    pub display_height: u32,
}

impl DecoderModel {
    /// A phone-class hardware decoder driving a 1080p panel.
    pub fn phone_1080p() -> Self {
        DecoderModel {
            decode_j_per_mpx: 0.0020,
            upscale_j_per_mpx: 0.0008,
            display_width: 1920,
            display_height: 1080,
        }
    }

    /// Panel pixels per frame.
    fn display_pixels(&self) -> f64 {
        f64::from(self.display_width) * f64::from(self.display_height)
    }

    /// Charges every downloaded segment's frames at its chosen
    /// representation's resolution (looked up by bitrate in the
    /// manifest's ladder), plus the upscale deficit to panel resolution.
    /// Summation order is the fixed segment order, so the result is
    /// bit-stable.
    pub fn account(&self, bitrates: &[u32], manifest: &Manifest) -> f64 {
        let display_px = self.display_pixels();
        let frames = manifest.frames_per_segment as f64;
        let mut energy = 0.0;
        for &kbps in bitrates {
            let rep = manifest
                .representations()
                .iter()
                .find(|r| r.bitrate_kbps == kbps)
                .copied()
                .unwrap_or_else(|| manifest.representation(0));
            let px = rep.pixels() as f64;
            energy += frames * px / 1e6 * self.decode_j_per_mpx;
            if px < display_px {
                energy += frames * (display_px - px) / 1e6 * self.upscale_j_per_mpx;
            }
        }
        energy
    }

    /// Hashes every parameter into `fp`.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_f64(self.decode_j_per_mpx);
        fp.write_f64(self.upscale_j_per_mpx);
        fp.write_u32(self.display_width);
        fp.write_u32(self.display_height);
    }
}

/// The whole-device co-model: any subset of radio, display, and decoder.
///
/// The default ([`DevicePowerModel::none`]) has every component absent
/// and accounts to an all-zero [`DevicePowerReport`] — the zero-power
/// no-op every committed figure runs under.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DevicePowerModel {
    /// RRC radio component, if modeled.
    pub radio: Option<RrcRadioModel>,
    /// Display component, if modeled.
    pub display: Option<DisplayModel>,
    /// Decoder component, if modeled.
    pub decoder: Option<DecoderModel>,
}

impl DevicePowerModel {
    /// The zero-power no-op: no components, all-zero report.
    pub fn none() -> Self {
        DevicePowerModel::default()
    }

    /// True when no component is modeled (the no-op).
    pub fn is_none(&self) -> bool {
        self.radio.is_none() && self.display.is_none() && self.decoder.is_none()
    }

    /// A phone-class device: LTE radio, 60 % brightness panel, hardware
    /// decoder driving a 1080p display.
    pub fn phone() -> Self {
        DevicePowerModel::phone_with_brightness(0.6)
    }

    /// [`DevicePowerModel::phone`] at an explicit brightness.
    pub fn phone_with_brightness(brightness: f64) -> Self {
        DevicePowerModel {
            radio: Some(RrcRadioModel::lte()),
            display: Some(DisplayModel::phone(brightness)),
            decoder: Some(DecoderModel::phone_1080p()),
        }
    }

    /// Accounts the whole device for one finished session: a pure
    /// function of the download timeline, the chosen per-segment
    /// bitrates, the manifest, the session seed, and the session length.
    /// No event-loop state is read, so the computation cannot perturb
    /// the simulation it describes.
    pub fn account(
        &self,
        seed: u64,
        activity: Vec<ActivityInterval>,
        bitrates: &[u32],
        manifest: &Manifest,
        session_len: SimDuration,
    ) -> DevicePowerReport {
        let mut report = DevicePowerReport::default();
        if let Some(radio) = &self.radio {
            let rrc = radio.account(activity, session_len);
            report.radio_j = rrc.energy_j;
            report.radio_idle_time = rrc.idle_time;
            report.radio_promo_time = rrc.promo_time;
            report.radio_active_time = rrc.active_time;
            report.radio_tail_time = rrc.tail_time;
            report.radio_promotions = rrc.promotions;
        }
        if let Some(display) = &self.display {
            report.display_j = display.account(seed, manifest, session_len);
        }
        if let Some(decoder) = &self.decoder {
            report.decoder_j = decoder.account(bitrates, manifest);
        }
        report
    }

    /// Hashes the model into `fp`: one presence byte per component, then
    /// its parameters. [`DevicePowerModel::none`] hashes as three zero
    /// bytes — callers that want none-equals-absent must tag at their
    /// own layer (the session builder does).
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        match &self.radio {
            Some(r) => {
                fp.write_u8(1);
                r.fingerprint(fp);
            }
            None => fp.write_u8(0),
        }
        match &self.display {
            Some(d) => {
                fp.write_u8(1);
                d.fingerprint(fp);
            }
            None => fp.write_u8(0),
        }
        match &self.decoder {
            Some(d) => {
                fp.write_u8(1);
                d.fingerprint(fp);
            }
            None => fp.write_u8(0),
        }
    }
}

/// Per-component whole-device energy counters for one session. The
/// default is all-zero — what every session reports when the model is
/// [`DevicePowerModel::none`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DevicePowerReport {
    /// Radio energy, joules.
    pub radio_j: f64,
    /// Display energy, joules.
    pub display_j: f64,
    /// Decoder energy, joules.
    pub decoder_j: f64,
    /// Radio time camped idle.
    pub radio_idle_time: SimDuration,
    /// Radio time in promotion signaling.
    pub radio_promo_time: SimDuration,
    /// Radio time actively transferring.
    pub radio_active_time: SimDuration,
    /// Radio time in the inactivity tail.
    pub radio_tail_time: SimDuration,
    /// Radio IDLE→ACTIVE promotions.
    pub radio_promotions: u32,
}

impl DevicePowerReport {
    /// Total whole-device energy across modeled components, joules.
    pub fn total_j(&self) -> f64 {
        self.radio_j + self.display_j + self.decoder_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_metrics::stats::ExactSum;
    use proptest::prelude::*;

    fn iv(s_ms: u64, e_ms: u64) -> ActivityInterval {
        ActivityInterval {
            start: SimTime::ZERO + SimDuration::from_millis(s_ms),
            end: SimTime::ZERO + SimDuration::from_millis(e_ms),
        }
    }

    #[test]
    fn none_model_reports_all_zeros() {
        let m = DevicePowerModel::none();
        assert!(m.is_none());
        let manifest = Manifest::standard_ladder(SimDuration::from_secs(10), 30);
        let r = m.account(
            7,
            vec![iv(0, 2_000)],
            &[700, 1_500],
            &manifest,
            SimDuration::from_secs(10),
        );
        assert_eq!(r, DevicePowerReport::default());
        assert_eq!(r.total_j(), 0.0);
    }

    #[test]
    fn rrc_states_partition_the_session() {
        let m = RrcRadioModel::lte();
        let r = m.account(
            vec![iv(0, 3_000), iv(20_000, 23_000)],
            SimDuration::from_secs(60),
        );
        assert_eq!(
            r.idle_time + r.promo_time + r.active_time + r.tail_time,
            SimDuration::from_secs(60)
        );
        // Two transfers separated by 17 s > 10 s tail: two promotions.
        assert_eq!(r.promotions, 2);
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn close_transfers_skip_the_second_promotion() {
        let m = RrcRadioModel::lte();
        let r = m.account(
            vec![iv(0, 3_000), iv(5_000, 8_000)],
            SimDuration::from_secs(30),
        );
        assert_eq!(r.promotions, 1);
        // One 260 ms promotion, the rest of both transfers active.
        assert_eq!(r.promo_time, SimDuration::from_millis(260));
        assert_eq!(r.active_time, SimDuration::from_millis(5_740));
    }

    #[test]
    fn longer_tail_timer_costs_more_energy() {
        let activity = vec![iv(0, 2_000), iv(30_000, 32_000)];
        let len = SimDuration::from_secs(60);
        let short = RrcRadioModel::lte()
            .with_tail_timer(SimDuration::from_secs(1))
            .account(activity.clone(), len);
        let long = RrcRadioModel::lte()
            .with_tail_timer(SimDuration::from_secs(20))
            .account(activity, len);
        assert!(long.tail_time > short.tail_time);
        assert!(long.energy_j > short.energy_j);
        // The short timer demotes to idle in the gap; the long one also
        // avoids the second promotion once the timer covers the gap.
        assert_eq!(short.promotions, 2);
    }

    #[test]
    fn activity_clipped_to_session_end() {
        let m = RrcRadioModel::lte();
        let r = m.account(
            vec![iv(0, 5_000), iv(8_000, 20_000)],
            SimDuration::from_secs(6),
        );
        assert_eq!(
            r.idle_time + r.promo_time + r.active_time + r.tail_time,
            SimDuration::from_secs(6)
        );
        // The second interval starts after session end: never counted.
        assert_eq!(r.promotions, 1);
    }

    #[test]
    fn similarity_is_coordinate_keyed_and_in_range() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for seg in 0..64u64 {
                let s = segment_similarity(seed, seg);
                assert!((0.0..1.0).contains(&s), "similarity {s} out of range");
                assert_eq!(s, segment_similarity(seed, seg), "must be pure");
            }
        }
        assert_ne!(segment_similarity(1, 0), segment_similarity(2, 0));
        assert_ne!(segment_similarity(1, 0), segment_similarity(1, 1));
    }

    #[test]
    fn display_energy_scales_with_brightness_and_session_length() {
        let manifest = Manifest::standard_ladder(SimDuration::from_secs(60), 30);
        let dim = DisplayModel::phone(0.2);
        let bright = DisplayModel::phone(1.0);
        let len = SimDuration::from_secs(60);
        assert!(bright.account(42, &manifest, len) > dim.account(42, &manifest, len));
        assert!(
            bright.account(42, &manifest, SimDuration::from_secs(30))
                < bright.account(42, &manifest, len)
        );
    }

    #[test]
    fn decoder_charges_upscale_below_panel_resolution() {
        let manifest = Manifest::standard_ladder(SimDuration::from_secs(10), 30);
        let d = DecoderModel::phone_1080p();
        let low = d.account(&[700, 700], &manifest); // 360p: big upscale deficit
        let native = d.account(&[6_000, 6_000], &manifest); // 1080p: no deficit
        let high = d.account(&[10_000, 10_000], &manifest); // 1440p: no deficit
        assert!(low > 0.0);
        assert!(native < high, "more pixels decoded must cost more");
        // The 1080p rungs pay no upscale term.
        let native_only =
            2.0 * manifest.frames_per_segment as f64 * 2_073_600.0 / 1e6 * d.decode_j_per_mpx;
        assert!((native - native_only).abs() < 1e-12);
    }

    #[test]
    fn phone_preset_fingerprint_distinguishes_parameters() {
        let digest = |m: &DevicePowerModel| {
            let mut fp = Fingerprinter::new("power-test/v1");
            m.fingerprint(&mut fp);
            fp.finish()
        };
        let a = digest(&DevicePowerModel::phone());
        let b = digest(&DevicePowerModel::phone_with_brightness(0.61));
        let mut tail = DevicePowerModel::phone();
        tail.radio = tail
            .radio
            .map(|r| r.with_tail_timer(SimDuration::from_secs(3)));
        let c = digest(&tail);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, digest(&DevicePowerModel::none()));
    }

    proptest! {
        /// The radio walk is a pure function of the *timeline*, not of
        /// how the caller sliced or ordered the intervals: shuffling the
        /// list and splitting any interval in two leave the report
        /// bit-identical, and the state residencies always partition the
        /// session exactly.
        #[test]
        fn rrc_walk_is_a_pure_function_of_the_timeline(
            raw in proptest::collection::vec((0u64..120_000, 0u64..8_000), 0..12),
            session_ms in 1_000u64..180_000,
            tail_ms in 0u64..30_000,
            split_idx in 0usize..12,
            split_frac in 0.0f64..1.0,
            swap in proptest::collection::vec((0usize..12, 0usize..12), 0..6),
        ) {
            let model = RrcRadioModel::lte()
                .with_tail_timer(SimDuration::from_millis(tail_ms));
            let session = SimDuration::from_millis(session_ms);
            let intervals: Vec<ActivityInterval> = raw
                .iter()
                .map(|&(s, len)| iv(s, s + len))
                .collect();
            let base = model.account(intervals.clone(), session);

            // Shuffled order: identical report.
            let mut shuffled = intervals.clone();
            for &(a, b) in &swap {
                if a < shuffled.len() && b < shuffled.len() {
                    shuffled.swap(a, b);
                }
            }
            prop_assert_eq!(model.account(shuffled, session), base);

            // Splitting one interval into two touching halves: identical.
            let mut split = intervals.clone();
            let at = split_idx % split.len().max(1);
            if let Some(victim) = split.get(at).copied() {
                let len = victim.end.saturating_duration_since(victim.start);
                let cut = victim.start
                    + SimDuration::from_nanos((len.as_nanos() as f64 * split_frac) as u64);
                split[at] = ActivityInterval {
                    start: victim.start,
                    end: cut,
                };
                split.push(ActivityInterval { start: cut, end: victim.end });
                prop_assert_eq!(model.account(split, session), base);
            }

            // Residency partition is exact.
            prop_assert_eq!(
                base.idle_time + base.promo_time + base.active_time + base.tail_time,
                session
            );
            prop_assert!(base.energy_j.is_finite() && base.energy_j >= 0.0);
        }

        /// Component energies fold into [`ExactSum`] with the bit-exact
        /// shard-split/merge property fleet aggregation relies on: any
        /// partition of the reports, merged in any grouping, yields the
        /// identical raw accumulator.
        #[test]
        fn component_energies_are_exactsum_mergeable(
            seeds in proptest::collection::vec(0u64..1_000, 1..24),
            cut in 0usize..24,
        ) {
            let manifest = Manifest::standard_ladder(SimDuration::from_secs(8), 30);
            let model = DevicePowerModel::phone();
            let reports: Vec<DevicePowerReport> = seeds
                .iter()
                .map(|&seed| {
                    model.account(
                        seed,
                        vec![iv(0, 500 + seed % 3_000)],
                        &[700, 3_000],
                        &manifest,
                        SimDuration::from_secs(8),
                    )
                })
                .collect();
            let fold = |rs: &[DevicePowerReport]| {
                let mut s = ExactSum::new();
                for r in rs {
                    s.add(r.radio_j);
                    s.add(r.display_j);
                    s.add(r.decoder_j);
                }
                s
            };
            let whole = fold(&reports);
            let cut = cut % reports.len().max(1);
            let mut left = fold(&reports[..cut]);
            let right = fold(&reports[cut..]);
            left.merge(&right);
            prop_assert_eq!(left.raw(), whole.raw());
        }
    }
}
