//! Regenerates experiment `f2_freq_timeline` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f2_freq_timeline")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
