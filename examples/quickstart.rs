//! Quickstart: stream one 60-second 1080p30 video under the EAVS governor
//! and the two stock Android-era governors, and compare energy and QoE.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use eavs::metrics::table::Table;
use eavs::scaling::governor::{EavsConfig, EavsGovernor};
use eavs::scaling::predictor::Hybrid;
use eavs::scaling::session::{GovernorChoice, StreamingSession};
use eavs::sim::time::SimDuration;
use eavs::video::manifest::Manifest;
use eavs_governors::{Interactive, Ondemand, Performance};

fn main() {
    let manifest = || Manifest::single(6_000, 1920, 1080, SimDuration::from_secs(60), 30);

    let governors: Vec<(&str, GovernorChoice)> = vec![
        (
            "performance",
            GovernorChoice::Baseline(Box::new(Performance)),
        ),
        (
            "ondemand",
            GovernorChoice::Baseline(Box::new(Ondemand::new())),
        ),
        (
            "interactive",
            GovernorChoice::Baseline(Box::new(Interactive::new())),
        ),
        (
            "eavs",
            GovernorChoice::Eavs(EavsGovernor::new(
                Box::new(Hybrid::default()),
                EavsConfig::default(),
            )),
        ),
    ];

    let mut table = Table::new(&[
        "governor",
        "cpu energy (J)",
        "mean power (W)",
        "mean freq",
        "miss %",
        "rebuffers",
        "transitions",
    ]);
    table.set_title("Quickstart: 60 s of 1080p30 film on flagship2016 over 20 Mbps WiFi");

    let mut baseline_joules = None;
    for (label, gov) in governors {
        let report = StreamingSession::builder(gov)
            .manifest(manifest())
            .seed(42)
            .run();
        if label == "ondemand" {
            baseline_joules = Some(report.cpu_joules());
        }
        table.row(&[
            label,
            &format!("{:.2}", report.cpu_joules()),
            &format!("{:.3}", report.mean_cpu_power()),
            &report.mean_freq.to_string(),
            &format!("{:.2}", report.qoe.deadline_miss_rate() * 100.0),
            &report.qoe.rebuffer_events.to_string(),
            &report.transitions.to_string(),
        ]);
        if label == "eavs" {
            if let Some(base) = baseline_joules {
                let saving = 1.0 - report.cpu_joules() / base;
                println!("{}", table.render());
                println!(
                    "EAVS saves {:.1}% CPU energy vs ondemand with {:.2}% deadline misses.",
                    saving * 100.0,
                    report.qoe.deadline_miss_rate() * 100.0
                );
                return;
            }
        }
    }
    println!("{}", table.render());
}
