//! End-to-end session throughput: how fast the whole simulator streams
//! 10 seconds of video under each governor class (simulated seconds per
//! wall second is the interesting ratio for sweep sizing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eavs_bench::harness::{governor, single_manifest, SEED};
use eavs_core::session::StreamingSession;
use eavs_trace::content::ContentProfile;

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_10s_720p30");
    group.sample_size(20);
    for name in [
        "performance",
        "ondemand",
        "interactive",
        "schedutil",
        "eavs",
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = StreamingSession::builder(governor(name))
                    .manifest(single_manifest(3_000, 1280, 720, 10, 30))
                    .content(ContentProfile::Film)
                    .seed(SEED)
                    .run();
                black_box(report.cpu_joules())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
