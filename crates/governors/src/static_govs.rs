//! The trivial governors: `performance`, `powersave`, `userspace`.

use crate::governor::CpufreqGovernor;
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;

/// Pins the policy at the maximum frequency.
#[derive(Clone, Copy, Debug, Default)]
pub struct Performance;

impl CpufreqGovernor for Performance {
    fn name(&self) -> &'static str {
        "performance"
    }

    fn sampling_interval(&self) -> SimDuration {
        // Nothing to react to; sample rarely just to re-assert the target
        // after limit changes.
        SimDuration::from_millis(100)
    }

    fn initial_index(&self, _table: &OppTable, limits: PolicyLimits) -> OppIndex {
        limits.max_index
    }

    fn on_sample(
        &mut self,
        _sample: &LoadSample,
        _table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        limits.max_index
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        // Stateless: the name is the whole identity.
        fp.write_str(self.name());
    }
}

/// Pins the policy at the minimum frequency.
#[derive(Clone, Copy, Debug, Default)]
pub struct Powersave;

impl CpufreqGovernor for Powersave {
    fn name(&self) -> &'static str {
        "powersave"
    }

    fn sampling_interval(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }

    fn on_sample(
        &mut self,
        _sample: &LoadSample,
        _table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        limits.min_index
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
    }
}

/// Holds whatever frequency was last set through `scaling_setspeed`.
#[derive(Clone, Copy, Debug)]
pub struct Userspace {
    target: OppIndex,
}

impl Userspace {
    /// Creates a userspace governor initially pinned to `target`.
    pub fn new(target: OppIndex) -> Self {
        Userspace { target }
    }

    /// Updates the pinned index (the `scaling_setspeed` write).
    pub fn set_speed(&mut self, target: OppIndex) {
        self.target = target;
    }

    /// The pinned index.
    pub fn speed(&self) -> OppIndex {
        self.target
    }
}

impl CpufreqGovernor for Userspace {
    fn name(&self) -> &'static str {
        "userspace"
    }

    fn sampling_interval(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }

    fn initial_index(&self, _table: &OppTable, limits: PolicyLimits) -> OppIndex {
        limits.clamp(self.target)
    }

    fn on_sample(
        &mut self,
        _sample: &LoadSample,
        _table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        limits.clamp(self.target)
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        // The pinned index fully determines behavior, whether it came from
        // the constructor or a later `set_speed` write.
        fp.write_str(self.name());
        fp.write_usize(self.target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_cpu::freq::Frequency;
    use eavs_sim::time::SimTime;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (2000, 1250)]).unwrap()
    }

    fn sample(load: f64) -> LoadSample {
        LoadSample {
            now: SimTime::from_secs(1),
            window: SimDuration::from_millis(10),
            busy_fraction: load,
            cur_freq: Frequency::from_mhz(1000),
            cur_index: 1,
        }
    }

    #[test]
    fn performance_always_max() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Performance;
        assert_eq!(g.initial_index(&t, limits), 2);
        assert_eq!(g.on_sample(&sample(0.0), &t, limits), 2);
        assert_eq!(g.on_sample(&sample(1.0), &t, limits), 2);
        assert_eq!(g.name(), "performance");
    }

    #[test]
    fn powersave_always_min() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Powersave;
        assert_eq!(g.initial_index(&t, limits), 0);
        assert_eq!(g.on_sample(&sample(1.0), &t, limits), 0);
    }

    #[test]
    fn userspace_holds_and_updates() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Userspace::new(1);
        assert_eq!(g.on_sample(&sample(0.9), &t, limits), 1);
        g.set_speed(2);
        assert_eq!(g.speed(), 2);
        assert_eq!(g.on_sample(&sample(0.1), &t, limits), 2);
    }

    #[test]
    fn limits_clamp_static_governors() {
        let t = table();
        let limits = PolicyLimits {
            min_index: 1,
            max_index: 1,
        };
        assert_eq!(Performance.on_sample(&sample(1.0), &t, limits), 1);
        assert_eq!(Powersave.on_sample(&sample(0.0), &t, limits), 1);
        assert_eq!(Userspace::new(2).on_sample(&sample(0.5), &t, limits), 1);
    }
}
