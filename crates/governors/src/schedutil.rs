//! The `schedutil` governor (Linux `kernel/sched/cpufreq_schedutil.c`).
//!
//! Chooses `next_freq = C × max_freq × util / max_capacity` with
//! `C = 1.25` (the kernel's "map util to 80% of a frequency" headroom).
//! Utilization here is frequency-invariant: the busy fraction scaled by
//! the frequency it was measured at, so `util / max_capacity =
//! busy_fraction × cur_freq / max_freq`. Frequency changes are rate-limited
//! by `rate_limit`.

use crate::governor::{lowest_index_for_khz, CpufreqGovernor};
use eavs_cpu::cluster::PolicyLimits;
use eavs_cpu::load::LoadSample;
use eavs_cpu::opp::{OppIndex, OppTable};
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::{SimDuration, SimTime};

/// Tunables.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SchedutilTunables {
    /// Headroom factor applied to measured utilization.
    pub headroom: f64,
    /// Minimum interval between frequency changes.
    pub rate_limit: SimDuration,
}

impl Default for SchedutilTunables {
    fn default() -> Self {
        SchedutilTunables {
            headroom: 1.25,
            rate_limit: SimDuration::from_millis(10),
        }
    }
}

/// The `schedutil` governor.
#[derive(Clone, Copy, Debug)]
pub struct Schedutil {
    tunables: SchedutilTunables,
    last_change: Option<(OppIndex, SimTime)>,
}

impl Schedutil {
    /// Creates the governor with default tunables.
    pub fn new() -> Self {
        Schedutil::with_tunables(SchedutilTunables::default())
    }

    /// Creates the governor with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if `headroom < 1.0`.
    pub fn with_tunables(tunables: SchedutilTunables) -> Self {
        assert!(tunables.headroom >= 1.0, "headroom below 1 starves the CPU");
        Schedutil {
            tunables,
            last_change: None,
        }
    }

    /// The [`on_sample`](CpufreqGovernor::on_sample) decision over a
    /// precomputed [`DecisionLut`](crate::kind::DecisionLut) — identical
    /// headroom math and rate-limit anchoring.
    pub(crate) fn decide_lut(
        &mut self,
        sample: &LoadSample,
        lut: &crate::kind::DecisionLut,
    ) -> OppIndex {
        let consumed_khz = sample.busy_fraction * sample.cur_freq.khz() as f64;
        let target_khz = self.tunables.headroom * consumed_khz;
        let target = lut.lookup(target_khz);

        match self.last_change {
            Some((idx, at))
                if target != idx
                    && sample.now.saturating_duration_since(at) < self.tunables.rate_limit =>
            {
                idx
            }
            Some((idx, _)) if target == idx => idx,
            _ => {
                self.last_change = Some((target, sample.now));
                target
            }
        }
    }
}

impl Default for Schedutil {
    fn default() -> Self {
        Schedutil::new()
    }
}

impl CpufreqGovernor for Schedutil {
    fn name(&self) -> &'static str {
        "schedutil"
    }

    fn sampling_interval(&self) -> SimDuration {
        // PELT updates arrive on scheduler ticks; 4 ms approximates the
        // tick-driven update rate.
        SimDuration::from_millis(4)
    }

    fn on_sample(
        &mut self,
        sample: &LoadSample,
        table: &OppTable,
        limits: PolicyLimits,
    ) -> OppIndex {
        // Frequency-invariant consumed clock rate.
        let consumed_khz = sample.busy_fraction * sample.cur_freq.khz() as f64;
        let target_khz = self.tunables.headroom * consumed_khz;
        let target = lowest_index_for_khz(table, limits, target_khz);

        match self.last_change {
            Some((idx, at))
                if target != idx
                    && sample.now.saturating_duration_since(at) < self.tunables.rate_limit =>
            {
                idx
            }
            Some((idx, _)) if target == idx => idx,
            _ => {
                self.last_change = Some((target, sample.now));
                target
            }
        }
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        if self.last_change.is_some() {
            // A live rate-limit anchor is learned state.
            fp.mark_opaque();
            return;
        }
        fp.write_str(self.name());
        fp.write_f64(self.tunables.headroom);
        fp.write_u64(self.tunables.rate_limit.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_cpu::freq::Frequency;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[(500, 900), (1000, 1000), (1500, 1100), (2000, 1250)]).unwrap()
    }

    fn sample(busy: f64, cur_mhz: u32, cur_index: OppIndex, t_ms: u64) -> LoadSample {
        LoadSample {
            now: SimTime::from_millis(t_ms),
            window: SimDuration::from_millis(4),
            busy_fraction: busy,
            cur_freq: Frequency::from_mhz(cur_mhz),
            cur_index,
        }
    }

    #[test]
    fn applies_headroom_to_invariant_util() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Schedutil::new();
        // 60% busy at 1000 MHz -> consumed 600 MHz -> ×1.25 = 750 -> 1000 OPP.
        assert_eq!(g.on_sample(&sample(0.6, 1000, 1, 0), &t, limits), 1);
        // 90% at 1500 -> 1350 -> ×1.25 = 1687 -> 2000 OPP.
        let mut g = Schedutil::new();
        assert_eq!(g.on_sample(&sample(0.9, 1500, 2, 0), &t, limits), 3);
    }

    #[test]
    fn full_load_at_max_stays_at_max() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Schedutil::new();
        assert_eq!(g.on_sample(&sample(1.0, 2000, 3, 0), &t, limits), 3);
    }

    #[test]
    fn idle_scales_to_min() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Schedutil::new();
        assert_eq!(g.on_sample(&sample(0.0, 2000, 3, 0), &t, limits), 0);
    }

    #[test]
    fn rate_limit_blocks_rapid_changes() {
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g = Schedutil::new();
        // 100% at 500 MHz -> 625 MHz target -> 1000 MHz OPP (index 1).
        assert_eq!(g.on_sample(&sample(1.0, 500, 0, 0), &t, limits), 1);
        // Change requested 4 ms later is inside the 10 ms rate limit.
        let held = g.on_sample(&sample(0.0, 1000, 1, 4), &t, limits);
        assert_eq!(held, 1, "rate limit holds previous choice");
        // After the rate limit it may move.
        let moved = g.on_sample(&sample(0.0, 1000, 1, 14), &t, limits);
        assert_eq!(moved, 0);
    }

    #[test]
    fn frequency_invariance_consistency() {
        // The same physical workload (consumed clock) maps to the same
        // target regardless of the frequency it was observed at.
        let t = table();
        let limits = PolicyLimits::full(&t);
        let mut g1 = Schedutil::new();
        let mut g2 = Schedutil::new();
        let a = g1.on_sample(&sample(0.9, 1000, 1, 0), &t, limits); // 900 consumed
        let b = g2.on_sample(&sample(0.45, 2000, 3, 0), &t, limits); // 900 consumed
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn sub_unity_headroom_rejected() {
        Schedutil::with_tunables(SchedutilTunables {
            headroom: 0.9,
            ..SchedutilTunables::default()
        });
    }
}
