//! # eavs-cpu — mobile SoC CPU/DVFS/power model
//!
//! The hardware substrate for the EAVS reproduction: a smartphone-class CPU
//! frequency domain with operating performance points, a CMOS power model,
//! idle states, frequency-transition latency, per-OPP residency statistics
//! and a thermal model. Everything a cpufreq governor touches on a real
//! device exists here in simulated form.
//!
//! * [`freq`] — `Frequency` (kHz), `Voltage` (mV) and `Cycles` units.
//! * [`opp`] — validated OPP tables ([`OppTable`]).
//! * [`power`] — `P = Ceff·V²·f + leak·V` and measured-table power models.
//! * [`cstate`] — idle-state ladders with target residencies.
//! * [`core`] — single-core execution (jobs as cycle bags).
//! * [`cluster`] — the governor-controlled frequency domain:
//!   energy integration, `time_in_state`, transition latency.
//! * [`load`] — sampling-window load observation for classic governors.
//! * [`thermal`] — RC thermal model and throttle controller.
//! * [`soc`] — phone-shaped presets used by all experiments.
//!
//! ## Example
//!
//! ```
//! use eavs_cpu::freq::Cycles;
//! use eavs_cpu::soc::SocModel;
//! use eavs_sim::time::SimTime;
//!
//! let mut cluster = SocModel::Flagship2016.build_cluster();
//! cluster.set_target(SimTime::ZERO, 3);
//! cluster.start_job(SimTime::ZERO, 0, Cycles::from_mega(50.0));
//! let done = cluster.completion_time(SimTime::ZERO, 0).unwrap();
//! cluster.advance(done);
//! assert_eq!(cluster.core(0).jobs_completed(), 1);
//! let energy = cluster.energy_at(done);
//! assert!(energy.busy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod core;
pub mod cstate;
pub mod freq;
pub mod load;
pub mod opp;
pub mod power;
pub mod soc;
pub mod thermal;

pub use cluster::{Cluster, ClusterConfig, CpuEnergyBreakdown, PolicyLimits};
pub use core::{CoreState, CpuCore};
pub use cstate::{CState, CStateTable};
pub use freq::{Cycles, Frequency, Voltage};
pub use load::{LoadMonitor, LoadSample};
pub use opp::{Opp, OppIndex, OppTable};
pub use power::{CmosPowerModel, PowerModel, TablePowerModel};
pub use soc::SocModel;
pub use thermal::{ThermalModel, ThrottleController};
