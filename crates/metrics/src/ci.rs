//! Confidence intervals for experiment repetitions.

use crate::stats::OnlineStats;

/// A two-sided confidence interval around a mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// `true` if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }
}

/// Two-sided Student-t critical values at the 95% level for df = 1..=30.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided Student-t critical values at the 99% level for df = 1..=30.
const T99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// The two-sided Student-t critical value for the given confidence level
/// (0.95 or 0.99) and degrees of freedom; converges to the normal quantile
/// for large df.
///
/// # Panics
///
/// Panics for unsupported levels or `df == 0`.
pub fn t_critical(level: f64, df: u64) -> f64 {
    assert!(df > 0, "zero degrees of freedom");
    let table: &[f64; 30] = if (level - 0.95).abs() < 1e-9 {
        &T95
    } else if (level - 0.99).abs() < 1e-9 {
        &T99
    } else {
        panic!("unsupported confidence level {level}; use 0.95 or 0.99");
    };
    if df <= 30 {
        table[(df - 1) as usize]
    } else if (level - 0.95).abs() < 1e-9 {
        1.960
    } else {
        2.576
    }
}

/// Computes the CI of the mean from repeated-run statistics.
///
/// # Panics
///
/// Panics if fewer than 2 observations or unsupported level.
pub fn mean_confidence_interval(stats: &OnlineStats, level: f64) -> ConfidenceInterval {
    assert!(
        stats.count() >= 2,
        "confidence interval needs at least 2 runs, got {}",
        stats.count()
    );
    let t = t_critical(level, stats.count() - 1);
    let sem = stats.sample_std_dev() / (stats.count() as f64).sqrt();
    ConfidenceInterval {
        mean: stats.mean(),
        half_width: t * sem,
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_interval() {
        // Classic example: n=5, mean=10, s=2 -> hw = 2.776 * 2/sqrt(5).
        let s: OnlineStats = [8.0, 9.0, 10.0, 11.0, 12.0].into_iter().collect();
        let ci = mean_confidence_interval(&s, 0.95);
        assert!((ci.mean - 10.0).abs() < 1e-12);
        let expected = 2.776 * s.sample_std_dev() / 5f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(ci.contains(10.0));
        assert!(!ci.contains(100.0));
        assert!(ci.lo() < ci.hi());
    }

    #[test]
    fn t_table_values() {
        assert!((t_critical(0.95, 1) - 12.706).abs() < 1e-9);
        assert!((t_critical(0.95, 30) - 2.042).abs() < 1e-9);
        assert!((t_critical(0.95, 1000) - 1.960).abs() < 1e-9);
        assert!((t_critical(0.99, 5) - 4.032).abs() < 1e-9);
        assert!((t_critical(0.99, 500) - 2.576).abs() < 1e-9);
    }

    #[test]
    fn wider_at_higher_confidence() {
        let s: OnlineStats = (0..10).map(f64::from).collect();
        let ci95 = mean_confidence_interval(&s, 0.95);
        let ci99 = mean_confidence_interval(&s, 0.99);
        assert!(ci99.half_width > ci95.half_width);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_run_panics() {
        let s: OnlineStats = [1.0].into_iter().collect();
        mean_confidence_interval(&s, 0.95);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence level")]
    fn bad_level_panics() {
        t_critical(0.5, 3);
    }

    #[test]
    fn zero_variance_gives_zero_width() {
        let s: OnlineStats = [5.0, 5.0, 5.0, 5.0].into_iter().collect();
        let ci = mean_confidence_interval(&s, 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(5.0));
    }
}
