//! Adaptive-bitrate (ABR) algorithms.
//!
//! Decides which ladder rung to fetch next. Three classic families are
//! implemented: fixed (the controlled-bitrate experiments), throughput-
//! based (harmonic-mean rate estimation with a safety factor) and
//! buffer-based (BBA-style linear mapping from buffer occupancy).

use crate::download::ThroughputSample;
use eavs_sim::fingerprint::Fingerprinter;
use eavs_sim::time::SimDuration;
use eavs_video::manifest::Manifest;

/// Everything an ABR may look at when choosing the next segment's rung.
#[derive(Clone, Debug)]
pub struct AbrContext<'a> {
    /// The manifest (ladder).
    pub manifest: &'a Manifest,
    /// Media buffered ahead of the playhead.
    pub buffer_level: SimDuration,
    /// Completed-transfer samples, oldest first.
    pub throughput: &'a [ThroughputSample],
    /// Index of the segment about to be requested.
    pub next_segment: u64,
    /// The rung used for the previous segment (`None` before the first).
    pub previous_choice: Option<usize>,
}

/// An ABR algorithm.
pub trait AbrAlgorithm: std::fmt::Debug + Send {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the ladder rung for the next segment.
    fn choose(&mut self, ctx: &AbrContext<'_>) -> usize;

    /// Hashes the algorithm's identity and parameters into `fp` for
    /// session memoization. The default marks the fingerprint opaque;
    /// the built-in algorithms are stateless and override it.
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.mark_opaque();
    }
}

/// Always fetches the same rung.
#[derive(Clone, Copy, Debug)]
pub struct FixedAbr {
    rung: usize,
}

impl FixedAbr {
    /// Creates a fixed ABR pinned to `rung`.
    pub fn new(rung: usize) -> Self {
        FixedAbr { rung }
    }
}

impl AbrAlgorithm for FixedAbr {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> usize {
        self.rung.min(ctx.manifest.num_representations() - 1)
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        fp.write_usize(self.rung);
    }
}

/// Throughput-based ABR: harmonic mean of the last `window` samples,
/// scaled by a safety factor, picks the highest sustainable rung.
#[derive(Clone, Copy, Debug)]
pub struct RateBasedAbr {
    window: usize,
    safety: f64,
}

impl RateBasedAbr {
    /// Creates a rate-based ABR.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `safety` is not in `(0, 1]`.
    pub fn new(window: usize, safety: f64) -> Self {
        assert!(window > 0, "zero estimation window");
        assert!(safety > 0.0 && safety <= 1.0, "safety must be in (0,1]");
        RateBasedAbr { window, safety }
    }

    /// The conventional configuration: 5-sample window, 0.8 safety.
    pub fn standard() -> Self {
        RateBasedAbr::new(5, 0.8)
    }

    fn estimate_bps(&self, samples: &[ThroughputSample]) -> Option<f64> {
        let tail: Vec<&ThroughputSample> = samples.iter().rev().take(self.window).collect();
        if tail.is_empty() {
            return None;
        }
        // Harmonic mean is robust to one inflated sample.
        let denom: f64 = tail.iter().map(|s| 1.0 / s.bps().max(1.0)).sum();
        Some(tail.len() as f64 / denom)
    }
}

impl AbrAlgorithm for RateBasedAbr {
    fn name(&self) -> &'static str {
        "rate"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> usize {
        let Some(est) = self.estimate_bps(ctx.throughput) else {
            return 0; // conservative start
        };
        let budget_kbps = est * self.safety / 1000.0;
        ctx.manifest
            .representations()
            .iter()
            .rev()
            .find(|r| f64::from(r.bitrate_kbps) <= budget_kbps)
            .map_or(0, |r| r.id)
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        // Stateless: throughput history lives in the session, not here.
        fp.write_str(self.name());
        fp.write_usize(self.window);
        fp.write_f64(self.safety);
    }
}

/// Buffer-based ABR (BBA-0): rung is a linear function of buffer occupancy
/// between a reservoir and a cushion.
#[derive(Clone, Copy, Debug)]
pub struct BufferBasedAbr {
    reservoir: SimDuration,
    cushion: SimDuration,
}

impl BufferBasedAbr {
    /// Creates a buffer-based ABR with the given reservoir (below it,
    /// lowest rung) and cushion (above `reservoir + cushion`, highest).
    ///
    /// # Panics
    ///
    /// Panics if `cushion` is zero.
    pub fn new(reservoir: SimDuration, cushion: SimDuration) -> Self {
        assert!(!cushion.is_zero(), "zero cushion");
        BufferBasedAbr { reservoir, cushion }
    }

    /// The BBA paper's shape scaled to a 30 s player buffer: 5 s reservoir,
    /// 15 s cushion.
    pub fn standard() -> Self {
        BufferBasedAbr::new(SimDuration::from_secs(5), SimDuration::from_secs(15))
    }
}

impl AbrAlgorithm for BufferBasedAbr {
    fn name(&self) -> &'static str {
        "buffer"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> usize {
        let top = ctx.manifest.num_representations() - 1;
        let level = ctx.buffer_level;
        if level <= self.reservoir {
            return 0;
        }
        let above = level - self.reservoir;
        if above >= self.cushion {
            return top;
        }
        let frac = above.ratio(self.cushion);
        (frac * top as f64).floor() as usize
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        fp.write_u64(self.reservoir.as_nanos());
        fp.write_u64(self.cushion.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eavs_sim::time::SimDuration;

    fn manifest() -> Manifest {
        Manifest::standard_ladder(SimDuration::from_secs(60), 30)
    }

    fn sample(mbps: f64) -> ThroughputSample {
        ThroughputSample {
            bytes: (mbps * 1e6 / 8.0) as u64,
            duration: SimDuration::from_secs(1),
        }
    }

    fn ctx<'a>(
        m: &'a Manifest,
        buffer_secs: u64,
        throughput: &'a [ThroughputSample],
    ) -> AbrContext<'a> {
        AbrContext {
            manifest: m,
            buffer_level: SimDuration::from_secs(buffer_secs),
            throughput,
            next_segment: 3,
            previous_choice: Some(0),
        }
    }

    #[test]
    fn fixed_clamps_to_ladder() {
        let m = manifest();
        let mut abr = FixedAbr::new(99);
        assert_eq!(abr.choose(&ctx(&m, 10, &[])), 4);
        let mut abr = FixedAbr::new(2);
        assert_eq!(abr.choose(&ctx(&m, 10, &[])), 2);
        assert_eq!(abr.name(), "fixed");
    }

    #[test]
    fn rate_based_starts_conservative() {
        let m = manifest();
        let mut abr = RateBasedAbr::standard();
        assert_eq!(abr.choose(&ctx(&m, 10, &[])), 0);
    }

    #[test]
    fn rate_based_picks_highest_sustainable() {
        let m = manifest();
        let mut abr = RateBasedAbr::standard();
        // 10 Mbps × 0.8 = 8 Mbps budget -> 1080p (6 Mbps), not 1440p (10).
        let samples = vec![sample(10.0); 5];
        assert_eq!(abr.choose(&ctx(&m, 10, &samples)), 3);
        // 1.2 Mbps × 0.8 < 1.5 Mbps -> lowest-but-one fails, take 700 kbps.
        let slow = vec![sample(1.2); 5];
        assert_eq!(abr.choose(&ctx(&m, 10, &slow)), 0);
    }

    #[test]
    fn rate_based_harmonic_mean_resists_spikes() {
        let m = manifest();
        let mut abr = RateBasedAbr::new(5, 0.8);
        // Four slow samples and one huge spike: harmonic mean stays low.
        let samples = vec![
            sample(1.0),
            sample(1.0),
            sample(1.0),
            sample(1.0),
            sample(100.0),
        ];
        assert_eq!(abr.choose(&ctx(&m, 10, &samples)), 0);
    }

    #[test]
    fn buffer_based_maps_levels() {
        let m = manifest();
        let mut abr = BufferBasedAbr::standard();
        assert_eq!(abr.choose(&ctx(&m, 2, &[])), 0, "inside reservoir");
        assert_eq!(abr.choose(&ctx(&m, 30, &[])), 4, "above cushion");
        let mid = abr.choose(&ctx(&m, 12, &[]));
        assert!((1..=3).contains(&mid), "mid buffer -> mid rung, got {mid}");
        assert_eq!(abr.name(), "buffer");
    }

    #[test]
    fn buffer_based_monotone_in_level() {
        let m = manifest();
        let mut abr = BufferBasedAbr::standard();
        let mut last = 0;
        for secs in 0..35 {
            let rung = abr.choose(&ctx(&m, secs, &[]));
            assert!(rung >= last, "rung decreased as buffer grew");
            last = rung;
        }
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn bad_safety_rejected() {
        RateBasedAbr::new(5, 1.5);
    }
}
