//! Regenerates experiment `f12_residency` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f12_residency")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
