//! Regression net over the whole experiment suite: every registered
//! experiment regenerates, produces rows, and round-trips through CSV.

use eavs_bench::all_experiments;

#[test]
fn every_experiment_produces_rows() {
    for (id, f) in all_experiments() {
        let table = f();
        assert!(table.num_rows() > 0, "{id}: empty table");
        let csv = table.to_csv();
        assert!(
            csv.lines().count() == table.num_rows() + 1,
            "{id}: csv mismatch"
        );
        let rendered = table.render();
        assert!(rendered.contains("=="), "{id}: missing title");
    }
}

#[test]
fn experiment_ids_are_unique_and_well_formed() {
    let mut ids: Vec<&str> = all_experiments().into_iter().map(|(id, _)| id).collect();
    assert!(ids.iter().all(|id| id
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')));
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicate experiment ids");
    assert_eq!(before, 32, "experiment count drifted; update docs");
}

#[test]
fn experiments_are_deterministic() {
    // Representative fast experiments rerun bit-identically.
    for id in ["f5_energy_by_governor", "f13_ablations", "t4_soc_matrix"] {
        let f = all_experiments()
            .into_iter()
            .find(|(i, _)| *i == id)
            .map(|(_, f)| f)
            .expect("registered");
        assert_eq!(f().to_csv(), f().to_csv(), "{id} not deterministic");
    }
}

#[test]
fn pool_execution_matches_serial() {
    // The work-stealing pool must not change results: a sweep of sessions
    // run through `run_parallel_labeled` is byte-identical (Debug repr of
    // the full report) to the same sessions run serially, in the same order.
    use eavs_bench::harness::{governor, manifest_1080p30, run_parallel_labeled, SEED};
    use eavs_core::session::StreamingSession;
    use std::sync::Arc;

    let names = ["ondemand", "interactive", "schedutil", "eavs"];
    let manifest = Arc::new(manifest_1080p30(15));

    let run_one = |name: &str, seed: u64, manifest: Arc<_>| {
        StreamingSession::builder(governor(name))
            .manifest(manifest)
            .seed(seed)
            .run()
    };

    let serial: Vec<String> = names
        .iter()
        .flat_map(|&name| {
            let manifest = Arc::clone(&manifest);
            (0..3u64).map(move |k| format!("{:?}", run_one(name, SEED + k, Arc::clone(&manifest))))
        })
        .collect();

    let pooled: Vec<String> = run_parallel_labeled(
        names
            .iter()
            .flat_map(|&name| {
                let manifest = Arc::clone(&manifest);
                (0..3u64).map(move |k| {
                    let manifest = Arc::clone(&manifest);
                    let job = move || format!("{:?}", run_one(name, SEED + k, manifest));
                    (format!("determinism {name} seed {k}"), job)
                })
            })
            .collect(),
    );

    assert_eq!(serial, pooled, "pool execution changed session results");
}
