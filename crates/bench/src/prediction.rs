//! F4: workload-prediction accuracy.

use std::sync::Arc;

use crate::harness::{manifest_1080p30, run_parallel_labeled, SEED};
use eavs_core::predictor::{predictor_by_name, FrameMeta, PREDICTOR_NAMES};
use eavs_metrics::quantile::Quantiles;
use eavs_metrics::table::Table;
use eavs_trace::content::ContentProfile;
use eavs_trace::video_gen::VideoGenerator;
use eavs_video::manifest::Manifest;

/// Per-(predictor, content) accuracy over a sequential replay of the
/// decode stream: each frame is predicted *before* its actual cost is
/// observed, exactly as the governor experiences it online.
pub struct PredictionRun {
    /// Predictor name.
    pub predictor: &'static str,
    /// Content streamed.
    pub content: ContentProfile,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// 95th percentile absolute percentage error.
    pub p95_ape: f64,
    /// Fraction of frames whose cost was *underestimated* (the dangerous
    /// direction: may cause a deadline miss if the margin cannot absorb
    /// it).
    pub underestimate_rate: f64,
    /// Mean of `(actual − predicted)/actual` over underestimated frames.
    pub mean_underestimate: f64,
}

/// Replays one (predictor, content) pair over 120 s of 1080p30.
pub fn replay(predictor_name: &'static str, content: ContentProfile) -> PredictionRun {
    replay_with(Arc::new(manifest_1080p30(120)), predictor_name, content)
}

/// [`replay`] against a shared manifest, so sweeps reference one allocation.
pub fn replay_with(
    manifest: Arc<Manifest>,
    predictor_name: &'static str,
    content: ContentProfile,
) -> PredictionRun {
    let generator = VideoGenerator::new(manifest, content, SEED);
    let mut predictor = predictor_by_name(predictor_name).expect("known predictor");
    let mut ape = Quantiles::new();
    let mut ape_sum = 0.0;
    let mut under = 0u64;
    let mut under_sum = 0.0;
    let mut n = 0u64;
    for segment in generator.all_segments(0) {
        for frame in segment.frames() {
            let meta = FrameMeta::from(frame);
            let predicted = predictor.predict(meta).get();
            let actual = frame.decode_cycles.get();
            let e = ((predicted - actual) / actual).abs();
            ape.push(e);
            ape_sum += e;
            if predicted < actual {
                under += 1;
                under_sum += (actual - predicted) / actual;
            }
            n += 1;
            predictor.observe(meta, frame.decode_cycles);
        }
    }
    PredictionRun {
        predictor: predictor_name,
        content,
        mape: ape_sum / n as f64,
        p95_ape: ape.quantile(0.95),
        underestimate_rate: under as f64 / n as f64,
        mean_underestimate: if under > 0 {
            under_sum / under as f64
        } else {
            0.0
        },
    }
}

/// F4: the accuracy table across predictors and contents.
pub fn f4_prediction() -> Table {
    let mut t = Table::new(&[
        "predictor",
        "content",
        "MAPE %",
        "P95 APE %",
        "underest %",
        "mean underest %",
    ]);
    t.set_title("F4: per-frame decode-cost prediction accuracy (online replay, 120 s @1080p30)");
    let manifest = Arc::new(manifest_1080p30(120));
    let jobs = PREDICTOR_NAMES
        .iter()
        .flat_map(|&name| {
            let manifest = Arc::clone(&manifest);
            ContentProfile::ALL.into_iter().map(move |content| {
                let manifest = Arc::clone(&manifest);
                let job = move || replay_with(manifest, name, content);
                (format!("f4 {name} {}", content.name()), job)
            })
        })
        .collect();
    for run in run_parallel_labeled(jobs) {
        t.row(&[
            run.predictor,
            run.content.name(),
            &format!("{:.2}", run.mape * 100.0),
            &format!("{:.2}", run.p95_ape * 100.0),
            &format!("{:.1}", run.underestimate_rate * 100.0),
            &format!("{:.2}", run.mean_underestimate * 100.0),
        ]);
    }
    t
}
