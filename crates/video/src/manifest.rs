//! DASH-style manifests: representation ladders and segment metadata.
//!
//! Media time is counted in *frames*: a segment is `frames_per_segment`
//! frames, each lasting `frame_duration = round(1s / fps)`. All buffer and
//! display math is frame-based, so sub-nanosecond rates (30 fps =
//! 33 333 333.3 ns) introduce no drift anywhere in the pipeline — the
//! clock is self-consistent by construction.

use eavs_sim::time::SimDuration;
use std::fmt;

/// One encoding of the content (a rung of the ABR ladder).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Representation {
    /// Ladder index (0 = lowest bitrate).
    pub id: usize,
    /// Average bitrate in kilobits per second.
    pub bitrate_kbps: u32,
    /// Luma width in pixels.
    pub width: u32,
    /// Luma height in pixels.
    pub height: u32,
}

impl Representation {
    /// Pixels per frame.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Average bytes per segment of the given duration.
    pub fn bytes_per_segment(&self, segment_duration: SimDuration) -> u64 {
        (u64::from(self.bitrate_kbps) * 1000 / 8) * segment_duration.as_millis() / 1000
    }
}

impl fmt::Display for Representation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p@{}kbps", self.height, self.bitrate_kbps)
    }
}

/// The stream manifest: the ladder plus timing metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct Manifest {
    representations: Vec<Representation>,
    /// Frames in each segment.
    pub frames_per_segment: u64,
    /// Total number of segments.
    pub num_segments: u64,
    /// Frames per second.
    pub fps: u32,
}

impl Manifest {
    /// Builds a manifest.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, representation ids are not dense
    /// indices, bitrates are not strictly increasing, `fps == 0`,
    /// `frames_per_segment == 0`, or `num_segments == 0`.
    pub fn new(
        representations: Vec<Representation>,
        frames_per_segment: u64,
        num_segments: u64,
        fps: u32,
    ) -> Self {
        assert!(!representations.is_empty(), "empty ladder");
        assert!(fps > 0, "zero fps");
        assert!(frames_per_segment > 0, "empty segments");
        assert!(num_segments > 0, "zero-length stream");
        for (i, r) in representations.iter().enumerate() {
            assert_eq!(r.id, i, "representation ids must be dense ladder indices");
            if i > 0 {
                assert!(
                    r.bitrate_kbps > representations[i - 1].bitrate_kbps,
                    "ladder bitrates must strictly increase"
                );
            }
        }
        Manifest {
            representations,
            frames_per_segment,
            num_segments,
            fps,
        }
    }

    /// A standard 5-rung ladder (360p → 1440p) with 2-second segments.
    pub fn standard_ladder(duration: SimDuration, fps: u32) -> Self {
        let frames_per_segment = u64::from(fps) * 2;
        let seg = SimDuration::from_secs(2);
        let num_segments = duration.as_nanos().div_ceil(seg.as_nanos()).max(1);
        Manifest::new(
            vec![
                Representation {
                    id: 0,
                    bitrate_kbps: 700,
                    width: 640,
                    height: 360,
                },
                Representation {
                    id: 1,
                    bitrate_kbps: 1_500,
                    width: 854,
                    height: 480,
                },
                Representation {
                    id: 2,
                    bitrate_kbps: 3_000,
                    width: 1280,
                    height: 720,
                },
                Representation {
                    id: 3,
                    bitrate_kbps: 6_000,
                    width: 1920,
                    height: 1080,
                },
                Representation {
                    id: 4,
                    bitrate_kbps: 10_000,
                    width: 2560,
                    height: 1440,
                },
            ],
            frames_per_segment,
            num_segments,
            fps,
        )
    }

    /// A single-rung manifest at the given bitrate/resolution (fixed-quality
    /// experiments), 2-second segments.
    pub fn single(
        bitrate_kbps: u32,
        width: u32,
        height: u32,
        duration: SimDuration,
        fps: u32,
    ) -> Self {
        let seg = SimDuration::from_secs(2);
        let num_segments = duration.as_nanos().div_ceil(seg.as_nanos()).max(1);
        Manifest::new(
            vec![Representation {
                id: 0,
                bitrate_kbps,
                width,
                height,
            }],
            u64::from(fps) * 2,
            num_segments,
            fps,
        )
    }

    /// The ladder, lowest bitrate first.
    pub fn representations(&self) -> &[Representation] {
        &self.representations
    }

    /// The representation with ladder index `id`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn representation(&self, id: usize) -> Representation {
        self.representations[id]
    }

    /// Number of rungs.
    pub fn num_representations(&self) -> usize {
        self.representations.len()
    }

    /// Duration of one frame: `round(1 s / fps)`.
    pub fn frame_duration(&self) -> SimDuration {
        SimDuration::from_nanos((1_000_000_000 + u64::from(self.fps) / 2) / u64::from(self.fps))
    }

    /// Media duration of one segment (`frames_per_segment` frames).
    pub fn segment_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.frame_duration().as_nanos() * self.frames_per_segment)
    }

    /// Total content duration.
    pub fn total_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.segment_duration().as_nanos() * self.num_segments)
    }

    /// Total frame count.
    pub fn total_frames(&self) -> u64 {
        self.frames_per_segment * self.num_segments
    }

    /// Hashes the manifest *contents* (ladder, segmentation, fps) into
    /// `fp`, so two separately allocated but identical manifests collide —
    /// the property session and trace memoization rely on.
    pub fn fingerprint(&self, fp: &mut eavs_sim::fingerprint::Fingerprinter) {
        for rep in &self.representations {
            fp.write_usize(rep.id);
            fp.write_u32(rep.bitrate_kbps);
            fp.write_u32(rep.width);
            fp.write_u32(rep.height);
        }
        fp.write_u64(self.frames_per_segment);
        fp.write_u64(self.num_segments);
        fp.write_u32(self.fps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ladder_is_valid_and_ascending() {
        let m = Manifest::standard_ladder(SimDuration::from_secs(60), 30);
        assert_eq!(m.num_representations(), 5);
        assert_eq!(m.num_segments, 30);
        assert_eq!(m.frames_per_segment, 60);
        assert_eq!(m.total_frames(), 1800);
        let rates: Vec<u32> = m.representations().iter().map(|r| r.bitrate_kbps).collect();
        assert!(rates.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn representation_math() {
        let r = Representation {
            id: 0,
            bitrate_kbps: 6_000,
            width: 1920,
            height: 1080,
        };
        assert_eq!(r.pixels(), 2_073_600);
        // 6 Mbps × 2 s = 1.5 MB.
        assert_eq!(r.bytes_per_segment(SimDuration::from_secs(2)), 1_500_000);
        assert_eq!(r.to_string(), "1080p@6000kbps");
    }

    #[test]
    fn single_rung_manifest() {
        let m = Manifest::single(3_000, 1280, 720, SimDuration::from_secs(10), 30);
        assert_eq!(m.num_representations(), 1);
        assert_eq!(m.num_segments, 5);
    }

    #[test]
    fn partial_final_segment_rounds_up() {
        let m = Manifest::single(1_000, 640, 360, SimDuration::from_secs(5), 30);
        assert_eq!(m.num_segments, 3);
    }

    #[test]
    fn frame_duration_rounding() {
        let m30 = Manifest::standard_ladder(SimDuration::from_secs(4), 30);
        assert_eq!(m30.frame_duration(), SimDuration::from_nanos(33_333_333));
        let m60 = Manifest::standard_ladder(SimDuration::from_secs(4), 60);
        assert_eq!(m60.frame_duration(), SimDuration::from_nanos(16_666_667));
        // Self-consistency: segment = frames × frame_duration exactly.
        assert_eq!(
            m60.segment_duration().as_nanos(),
            m60.frame_duration().as_nanos() * m60.frames_per_segment
        );
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_ascending_ladder_rejected() {
        Manifest::new(
            vec![
                Representation {
                    id: 0,
                    bitrate_kbps: 2_000,
                    width: 1280,
                    height: 720,
                },
                Representation {
                    id: 1,
                    bitrate_kbps: 1_000,
                    width: 640,
                    height: 360,
                },
            ],
            60,
            10,
            30,
        );
    }
}
