//! Robustness experiments: fault storms and retry-policy sensitivity.
//!
//! Both figures drive sessions through the deterministic fault-injection
//! subsystem (`eavs-faults`). Fault decisions are keyed on stable
//! coordinates (segment index, attempt, frame index), so every governor
//! in a figure faces the *identical* storm — the rows differ only in how
//! the frequency policy absorbs it.

use std::sync::Arc;

use crate::harness::{
    eavs_resilient, governor, manifest_1080p30, run_parallel_labeled, run_session,
    COMPARISON_GOVERNORS, SEED,
};
use eavs_core::report::SessionReport;
use eavs_core::session::{GovernorChoice, StreamingSession};
use eavs_cpu::thermal::{ThermalModel, ThrottleController};
use eavs_faults::FaultPlan;
use eavs_metrics::table::Table;
use eavs_net::download::RetryPolicy;
use eavs_sim::time::SimDuration;
use eavs_trace::content::ContentProfile;

/// The retry policy both robustness figures treat as "balanced": a 2 s
/// watchdog, four retries, 250 ms base backoff doubling to a 5 s cap.
pub fn balanced_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: Some(SimDuration::from_secs(2)),
        max_retries: 4,
        backoff_base: SimDuration::from_millis(250),
        backoff_factor: 2.0,
        backoff_cap: SimDuration::from_secs(5),
    }
}

fn storm_session(gov: GovernorChoice, retry: RetryPolicy) -> Arc<SessionReport> {
    run_session(
        StreamingSession::builder(gov)
            .manifest(manifest_1080p30(90))
            .content(ContentProfile::Film)
            .thermal(
                ThermalModel::phone_default(),
                ThrottleController::phone_default(),
            )
            .faults(FaultPlan::standard_storm())
            .retry(retry)
            .seed(SEED),
    )
}

/// Row labels for F24, aligned with [`f24_reports`]: the comparison
/// governors plus the panic-recovery EAVS variant.
pub fn f24_labels() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = COMPARISON_GOVERNORS.to_vec();
    names.push("eavs-panic");
    names
}

type StormJob = Box<dyn FnOnce() -> Arc<SessionReport> + Send>;

/// The F24 row set: every comparison governor plus EAVS with panic
/// recovery, all run through [`FaultPlan::standard_storm`].
pub fn f24_reports() -> Vec<Arc<SessionReport>> {
    let mut jobs: Vec<(String, StormJob)> = COMPARISON_GOVERNORS
        .iter()
        .map(|&name| {
            let job: StormJob = Box::new(move || storm_session(governor(name), balanced_retry()));
            (format!("f24 {name}"), job)
        })
        .collect();
    jobs.push((
        "f24 eavs-panic".to_owned(),
        Box::new(|| storm_session(eavs_resilient(), balanced_retry())),
    ));
    run_parallel_labeled(jobs)
}

/// F24: one fault storm, every governor.
///
/// 90 s of 1080p30 film with the standard storm: a 5 s bandwidth
/// blackout, a stalled and a corrupt segment, a 30-frame decode-cycle
/// spike burst, a transient decoder stall and two ambient steps. The
/// balanced retry policy recovers every network fault; the spike burst
/// separates the governors — reactive ones miss vsyncs (or starve the
/// display outright) while EAVS with panic recovery re-races to the
/// ceiling and keeps the decoded queue fed.
pub fn f24_fault_storm() -> Table {
    let reports = f24_reports();
    let mut t = Table::new(&[
        "governor",
        "cpu (J)",
        "rebuf",
        "late vsyncs",
        "miss %",
        "retries",
        "timeouts",
        "corrupt",
        "panics",
        "mean freq",
    ]);
    t.set_title("F24: fault-storm recovery — 90 s 1080p30 film, standard storm, balanced retry");
    for (name, r) in f24_labels().iter().zip(&reports) {
        t.row(&[
            name,
            &format!("{:.1}", r.cpu_joules()),
            &r.qoe.rebuffer_events.to_string(),
            &r.qoe.late_vsyncs.to_string(),
            &format!("{:.3}", r.qoe.deadline_miss_rate() * 100.0),
            &r.download_retries.to_string(),
            &r.download_timeouts.to_string(),
            &r.corrupt_downloads.to_string(),
            &r.panic_races.to_string(),
            &r.mean_freq.to_string(),
        ]);
    }
    t
}

/// The retry policies F25 sweeps, as `(label, policy)` rows.
pub fn f25_policies() -> Vec<(&'static str, RetryPolicy)> {
    vec![
        (
            "hair-trigger",
            RetryPolicy {
                timeout: Some(SimDuration::from_millis(500)),
                max_retries: 6,
                backoff_base: SimDuration::from_millis(100),
                backoff_factor: 2.0,
                backoff_cap: SimDuration::from_secs(2),
            },
        ),
        ("balanced", balanced_retry()),
        (
            "patient",
            RetryPolicy {
                timeout: Some(SimDuration::from_secs(4)),
                max_retries: 2,
                backoff_base: SimDuration::from_secs(1),
                backoff_factor: 2.0,
                backoff_cap: SimDuration::from_secs(8),
            },
        ),
        (
            "give-up-fast",
            RetryPolicy {
                timeout: Some(SimDuration::from_secs(1)),
                max_retries: 0,
                ..RetryPolicy::default()
            },
        ),
        ("no-watchdog", RetryPolicy::default()),
    ]
}

/// F25: retry-policy sensitivity under a stall/corruption-heavy plan.
///
/// EAVS with panic recovery streams 90 s of film through randomized
/// heavy faults (15 % stall, 10 % corruption per attempt) while the
/// retry policy sweeps from trigger-happy to absent. Aggressive
/// watchdogs burn radio energy on retries; patient ones trade that for
/// rebuffer time; no watchdog at all leaves the first stalled transfer
/// hanging until the session's safety horizon.
pub fn f25_retry_sensitivity() -> Table {
    let plan = FaultPlan {
        randomized: Some(eavs_faults::RandomFaults::heavy(SEED)),
        ..FaultPlan::default()
    };
    let reports = run_parallel_labeled(
        f25_policies()
            .into_iter()
            .map(|(label, retry)| {
                let plan = plan.clone();
                let job = move || {
                    run_session(
                        StreamingSession::builder(eavs_resilient())
                            .manifest(manifest_1080p30(90))
                            .content(ContentProfile::Film)
                            .faults(plan)
                            .retry(retry)
                            .seed(SEED),
                    )
                };
                (format!("f25 {label}"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&[
        "policy",
        "retries",
        "timeouts",
        "corrupt",
        "abandoned",
        "rebuf",
        "startup (ms)",
        "session (s)",
        "cpu (J)",
        "radio (J)",
    ]);
    t.set_title("F25: retry-policy sensitivity — EAVS+panic, randomized heavy faults");
    for ((label, _), r) in f25_policies().iter().zip(&reports) {
        t.row(&[
            label,
            &r.download_retries.to_string(),
            &r.download_timeouts.to_string(),
            &r.corrupt_downloads.to_string(),
            &r.segments_abandoned.to_string(),
            &r.qoe.rebuffer_events.to_string(),
            &format!("{:.0}", r.qoe.startup_delay.as_secs_f64() * 1000.0),
            &format!("{:.1}", r.session_length.as_secs_f64()),
            &format!("{:.1}", r.cpu_joules()),
            &format!("{:.1}", r.radio.energy_j),
        ]);
    }
    t
}
