//! Regression test for replay-prefix keying: a sweep whose variants
//! differ only in knobs *outside* the replay prefix (the F10 safety
//! margins, plus a series-recording twin à la F2/F11/F12) must replay
//! the leader's decision timeline on every other lane — one recorder,
//! all siblings injecting, zero timeline misses — while every report
//! stays byte-identical to its scalar run.
//!
//! Lives in its own integration binary so the process-global timeline
//! counters are not perturbed by unrelated tests.

use std::sync::Arc;

use eavs_bench::harness::{eavs_with, manifest_1080p30, run_sessions, SEED};
use eavs_core::governor::EavsConfig;
use eavs_core::session::{SessionBuilder, StreamingSession};
use eavs_trace::content::ContentProfile;
use eavs_video::manifest::Manifest;

fn margin_builder(manifest: &Arc<Manifest>, margin: f64, series: bool) -> SessionBuilder {
    let cfg = EavsConfig {
        margin,
        ..EavsConfig::default()
    };
    StreamingSession::builder(eavs_with(cfg, "hybrid"))
        .manifest(Arc::clone(manifest))
        .content(ContentProfile::Sport)
        .seed(SEED)
        .record_series(series)
}

#[test]
fn out_of_prefix_sweep_replays_all_but_the_leader() {
    let manifest = Arc::new(manifest_1080p30(10));
    let margins = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50];

    // Scalar references, run first so their outcomes cannot depend on
    // the wave scheduler (fresh governors; replay is outcome-preserving
    // and this proves it).
    let scalar: Vec<String> = margins
        .iter()
        .map(|&m| format!("{:?}", margin_builder(&manifest, m, false).run()))
        .collect();
    let scalar_series = format!("{:?}", margin_builder(&manifest, 0.15, true).run());

    let timeline_before = eavs_trace::memo::decision_timeline_stats();
    let replayed_before = eavs_core::session::replayed_sessions();

    let mut jobs: Vec<(String, SessionBuilder)> = margins
        .iter()
        .map(|&m| {
            (
                format!("sweep margin {m:.2}"),
                margin_builder(&manifest, m, false),
            )
        })
        .collect();
    // The series twin is an observer-only variant: `record_series` is
    // excluded from the prefix, so it too must replay the leader.
    jobs.push((
        "sweep margin 0.15 +series".to_owned(),
        margin_builder(&manifest, 0.15, true),
    ));
    let total = jobs.len();
    let reports = run_sessions(jobs);

    for (i, r) in reports.iter().take(margins.len()).enumerate() {
        assert_eq!(
            format!("{:?}", **r),
            scalar[i],
            "margin lane {i} diverged under replay"
        );
    }
    assert_eq!(
        format!("{:?}", *reports[total - 1]),
        scalar_series,
        "series twin diverged under replay"
    );

    let timeline = eavs_trace::memo::decision_timeline_stats();
    let replayed = eavs_core::session::replayed_sessions() - replayed_before;
    assert_eq!(
        replayed,
        (total - 1) as u64,
        "every lane but the swept leader must replay"
    );
    assert_eq!(
        timeline.hits - timeline_before.hits,
        (total - 1) as u64,
        "each sibling lookup must hit the recorded timeline"
    );
    assert_eq!(
        timeline.misses - timeline_before.misses,
        0,
        "a leader's cold probe must not count as a timeline miss"
    );
}
