//! Regenerates experiment `f15_thermal` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f15_thermal")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
