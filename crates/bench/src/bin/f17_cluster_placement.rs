//! Regenerates experiment `f17_cluster_placement` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f17_cluster_placement")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
