//! Regenerates experiment `f5_energy_by_governor` (see DESIGN.md §4).

fn main() {
    let (id, f) = eavs_bench::all_experiments()
        .into_iter()
        .find(|(id, _)| *id == "f5_energy_by_governor")
        .expect("experiment registered");
    eavs_bench::harness::emit(id, &f());
}
