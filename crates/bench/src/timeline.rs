//! Timeline figures: F11 (buffer occupancy) and F12 (frequency residency).

use std::sync::Arc;

use crate::harness::{
    governor, manifest_1080p30, run_parallel_labeled, run_session, COMPARISON_GOVERNORS, SEED,
};
use eavs_core::session::StreamingSession;
use eavs_metrics::table::Table;
use eavs_sim::time::{SimDuration, SimTime};

/// F11: playback-buffer occupancy under EAVS vs ondemand (the governor
/// must not disturb buffer health).
pub fn f11_buffer_timeline() -> Table {
    let names = ["ondemand", "eavs"];
    let manifest = Arc::new(manifest_1080p30(60));
    let reports = run_parallel_labeled(
        names
            .iter()
            .map(|&name| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .seed(SEED)
                            .record_series(true),
                    )
                };
                (format!("f11 {name}"), job)
            })
            .collect(),
    );
    let mut t = Table::new(&["t (s)", "ondemand buffer (s)", "eavs buffer (s)"]);
    t.set_title("F11: playback buffer occupancy — 60 s of 1080p30 film");
    let series: Vec<_> = reports
        .iter()
        .map(|r| {
            r.buffer_series.as_ref().expect("recorded").resample(
                SimTime::ZERO,
                SimTime::from_secs(60),
                SimDuration::from_secs(2),
            )
        })
        .collect();
    for (a, b) in series[0].iter().zip(&series[1]) {
        t.row_owned(vec![
            format!("{:.0}", a.0.as_secs_f64()),
            format!("{:.2}", a.1),
            format!("{:.2}", b.1),
        ]);
    }
    t
}

/// F12: wall-clock frequency residency (time_in_state) by governor.
pub fn f12_residency() -> Table {
    let manifest = Arc::new(manifest_1080p30(60));
    let reports = run_parallel_labeled(
        COMPARISON_GOVERNORS
            .iter()
            .map(|&name| {
                let manifest = Arc::clone(&manifest);
                let job = move || {
                    run_session(
                        StreamingSession::builder(governor(name))
                            .manifest(manifest)
                            .seed(SEED),
                    )
                };
                (format!("f12 {name}"), job)
            })
            .collect(),
    );
    let freqs: Vec<String> = reports[0]
        .time_in_state
        .iter()
        .map(|&(f, _)| f.to_string())
        .collect();
    let mut headers: Vec<&str> = vec!["governor"];
    headers.extend(freqs.iter().map(String::as_str));
    let mut t = Table::new(&headers);
    t.set_title("F12: frequency residency (% of session) — 60 s of 1080p30 film");
    for r in &reports {
        let total: SimDuration = r.time_in_state.iter().map(|&(_, d)| d).sum();
        let mut row = vec![r.governor.clone()];
        for &(_, d) in &r.time_in_state {
            row.push(format!("{:.1}", d.ratio(total) * 100.0));
        }
        t.row_owned(row);
    }
    t
}
