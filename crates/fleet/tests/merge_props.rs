//! Property tests for the fleet aggregate algebra: folding shard
//! partials must be associative and order-independent down to the bit,
//! because `run_campaign` relies on exactly that to make shard size and
//! resume points invisible in the final output.

use std::sync::{Arc, OnceLock};

use eavs_core::report::SessionReport;
use eavs_fleet::campaign::{builder_for, draw_session, SessionDraw};
use eavs_fleet::{CampaignSpec, FleetAggregate};
use proptest::prelude::*;

const SESSIONS: usize = 12;

type Pool = (CampaignSpec, Vec<(SessionDraw, Vec<Arc<SessionReport>>)>);

/// The simulated sessions are by far the expensive part, so they run
/// once; every proptest case just re-folds the cached reports.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut spec = CampaignSpec::smoke();
        spec.name = "merge-props".to_owned();
        spec.sessions = SESSIONS as u64;
        spec.shard_size = 4;
        let data = (0..SESSIONS as u64)
            .map(|id| {
                let draw = draw_session(&spec, id);
                let reports = spec
                    .governors
                    .iter()
                    .map(|gov| Arc::new(builder_for(&draw, gov).unwrap().run()))
                    .collect();
                (draw, reports)
            })
            .collect();
        (spec, data)
    })
}

/// Folds the given session indices (in the given order) into one partial.
fn fold(ids: &[usize]) -> FleetAggregate {
    let (spec, data) = pool();
    let mut agg = FleetAggregate::new(spec);
    for &i in ids {
        let (draw, reports) = &data[i];
        agg.observe_arrival(draw.arrival_s);
        for (gov_index, report) in reports.iter().enumerate() {
            agg.observe(gov_index, report);
        }
        // Mirror `run_shard`: the fleet prior folds one lane per session.
        agg.observe_prior(
            &draw.title.key(),
            draw.content.name(),
            &reports[0].frame_cycles,
        );
    }
    agg
}

/// Deterministic Fisher–Yates driven by a SplitMix step, so each proptest
/// seed names one permutation.
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        ids.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A ∪ B) ∪ C == A ∪ (B ∪ C) == sequential fold of everything, for
    /// every way of cutting the population into three shards.
    #[test]
    fn merge_is_associative(cut_x in 1u64..11, cut_y in 1u64..11) {
        let a = cut_x.min(cut_y) as usize;
        let b = cut_x.max(cut_y) as usize;
        prop_assume!(a < b);
        let ids: Vec<usize> = (0..SESSIONS).collect();
        let (x, y, z) = (fold(&ids[..a]), fold(&ids[a..b]), fold(&ids[b..]));

        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);

        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x;
        right.merge(&yz);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &fold(&ids));
    }

    /// Merging per-shard partials in any order — and with sessions dealt
    /// to shards in any order — produces the same bits as the in-order
    /// sequential fold.
    #[test]
    fn merge_is_order_independent(perm_seed in 0u64..100_000, shard_len in 1u64..6) {
        let order = shuffled(SESSIONS, perm_seed);
        let mut merged = FleetAggregate::new(&pool().0);
        for shard in order.chunks(shard_len as usize) {
            merged.merge(&fold(shard));
        }
        let sequential = fold(&(0..SESSIONS).collect::<Vec<_>>());
        prop_assert_eq!(merged, sequential);
    }

    /// The fleet prior is part of the same algebra: merging per-shard
    /// prior stores in any order must produce the same *encoded bytes*
    /// as the sequential fold — this is what makes `--emit-prior` files
    /// byte-identical across `EAVS_JOBS` settings and shard interleavings.
    #[test]
    fn prior_merge_is_bit_exact_across_shard_orderings(
        perm_seed in 0u64..100_000,
        shard_len in 1u64..6,
    ) {
        let order = shuffled(SESSIONS, perm_seed);
        let mut merged = eavs_fleet::PriorStore::new();
        for shard in order.chunks(shard_len as usize) {
            merged.merge(&fold(shard).prior);
        }
        let sequential = fold(&(0..SESSIONS).collect::<Vec<_>>()).prior;
        prop_assert!(!sequential.is_empty());
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(
            eavs_fleet::prior::encode(&merged),
            eavs_fleet::prior::encode(&sequential)
        );
    }

    /// A ∪ B == B ∪ A for prior stores, bit-for-bit.
    #[test]
    fn prior_merge_is_commutative(cut in 1u64..11) {
        let ids: Vec<usize> = (0..SESSIONS).collect();
        let a = fold(&ids[..cut as usize]).prior;
        let b = fold(&ids[cut as usize..]).prior;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(eavs_fleet::prior::encode(&ab), eavs_fleet::prior::encode(&ba));
    }
}
