//! # eavs-governors — Linux cpufreq baseline governors
//!
//! Faithful re-implementations of the governors the paper compares
//! against, with kernel-default tunables:
//!
//! | governor | policy |
//! |---|---|
//! | [`Performance`] | pin max |
//! | [`Powersave`] | pin min |
//! | [`Userspace`] | hold the externally set speed |
//! | [`Ondemand`] | jump to max above 95% load, else ∝ load |
//! | [`Conservative`] | step ±5% of max between 20%/80% thresholds |
//! | [`Interactive`] | Android burst-to-hispeed + target-load scaling |
//! | [`Schedutil`] | 1.25 × frequency-invariant utilization |
//!
//! All of them observe only [`LoadSample`](eavs_cpu::load::LoadSample)s —
//! the same information their kernel counterparts have. The video-aware
//! governor that exploits pipeline knowledge lives in `eavs-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conservative;
pub mod governor;
pub mod interactive;
pub mod kind;
pub mod ondemand;
pub mod schedutil;
pub mod static_govs;

pub use conservative::{Conservative, ConservativeTunables};
pub use governor::CpufreqGovernor;
pub use interactive::{Interactive, InteractiveTunables};
pub use kind::{DecisionLut, GovernorKind, LutCache};
pub use ondemand::{Ondemand, OndemandTunables};
pub use schedutil::{Schedutil, SchedutilTunables};
pub use static_govs::{Performance, Powersave, Userspace};

/// Constructs a baseline governor by sysfs name.
///
/// Returns `None` for unknown names (including `"eavs"`, which is not a
/// baseline — construct it from `eavs-core`).
pub fn by_name(name: &str) -> Option<Box<dyn CpufreqGovernor>> {
    Some(match name {
        "performance" => Box::new(Performance),
        "powersave" => Box::new(Powersave),
        "userspace" => Box::new(Userspace::new(0)),
        "ondemand" => Box::new(Ondemand::new()),
        "conservative" => Box::new(Conservative::new()),
        "interactive" => Box::new(Interactive::new()),
        "schedutil" => Box::new(Schedutil::new()),
        _ => return None,
    })
}

/// The names of all baseline governors, in comparison order.
pub const BASELINE_NAMES: [&str; 7] = [
    "performance",
    "powersave",
    "userspace",
    "ondemand",
    "conservative",
    "interactive",
    "schedutil",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_constructs_all_baselines() {
        for name in BASELINE_NAMES {
            let g = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(g.name(), name);
        }
        assert!(by_name("eavs").is_none());
        assert!(by_name("bogus").is_none());
    }
}
