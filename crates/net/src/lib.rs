//! # eavs-net — network substrate
//!
//! Bandwidth-trace-driven downloading, ABR decision logic and cellular
//! radio power accounting for the EAVS reproduction:
//!
//! * [`bandwidth`] — piecewise-constant [`BandwidthTrace`] with exact
//!   transfer-completion integration.
//! * [`download`] — the sequential segment [`Downloader`] (one RTT per
//!   request, activity recorded for radio accounting).
//! * [`abr`] — fixed, throughput-based and buffer-based algorithms.
//! * [`radio`] — 3G RRC / LTE DRX / WiFi PSM state-machine energy models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abr;
pub mod bandwidth;
pub mod download;
pub mod radio;

pub use abr::{AbrAlgorithm, AbrContext, BufferBasedAbr, FixedAbr, RateBasedAbr};
pub use bandwidth::BandwidthTrace;
pub use download::{Downloader, ThroughputSample};
pub use radio::{ActivityInterval, RadioModel, RadioReport};
